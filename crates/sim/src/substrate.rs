//! Memoized scenario substrates.
//!
//! Every replication of every experiment starts from the same kind of
//! immutable input — a sampled population, a generated social graph, the
//! spanning-forest incentive tree, and the truthful asks — bundled as a
//! [`Scenario`]. Generating that substrate is O(n log n) and, after the
//! allocation-free auction engine, dominates the wall time of a sweep
//! point. A [`SubstrateCache`] memoizes fully generated scenarios behind
//! `Arc`s, keyed by the exact generation inputs `(config, seed)`, so the
//! `R` replications of a sweep point (and any other sweep point that asks
//! for the same substrate) pay the generation cost once.
//!
//! The cache is concurrent: [`parallel_map`](crate::runner::parallel_map)
//! workers hitting the same key block only on that key's one-time
//! generation (a per-key [`OnceLock`]), never on each other's distinct
//! keys, and a hit is a lock-free clone of an `Arc`. Generation happens
//! exactly once per key — pinned by the generation-counter tests — and a
//! cached scenario is bit-identical to [`Scenario::generate`] with the
//! same inputs because it *is* that call, memoized.
//!
//! [`SubstrateCache::passthrough`] builds a cache that never memoizes but
//! still counts generations; the `bench_sim` harness uses it as the
//! uncached arm so both arms run the same code path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::scenario::{GraphModel, Scenario, ScenarioConfig};

/// Hashable identity of a generation call: the full scenario configuration
/// (floats by bit pattern) plus the substrate seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct SubstrateKey {
    num_users: usize,
    num_types: usize,
    capacity_max: u64,
    cost_max_bits: u64,
    graph: GraphKey,
    seed: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum GraphKey {
    BarabasiAlbert { m: usize },
    ErdosRenyi { p_bits: u64 },
    WattsStrogatz { k: usize, beta_bits: u64 },
}

impl SubstrateKey {
    fn new(config: &ScenarioConfig, seed: u64) -> Self {
        Self {
            num_users: config.num_users,
            num_types: config.workload.num_types,
            capacity_max: config.workload.capacity_max,
            cost_max_bits: config.workload.cost_max.to_bits(),
            graph: match config.graph {
                GraphModel::BarabasiAlbert { m } => GraphKey::BarabasiAlbert { m },
                GraphModel::ErdosRenyi { p } => GraphKey::ErdosRenyi {
                    p_bits: p.to_bits(),
                },
                GraphModel::WattsStrogatz { k, beta } => GraphKey::WattsStrogatz {
                    k,
                    beta_bits: beta.to_bits(),
                },
            },
            seed,
        }
    }
}

/// A per-key cell: shared so that waiters block only on their own key's
/// generation, never on the whole map.
type SubstrateCell = Arc<OnceLock<Arc<Scenario>>>;

/// Mirrors cache activity into the process-global telemetry counters (a
/// no-op — one atomic load — when none is installed). Caches keep their
/// own per-instance counters; the global ones aggregate across caches.
fn mirror_to_telemetry(hits: u64, misses: u64, generations: u64) {
    if let Some(t) = rit_telemetry::active() {
        let m = t.metrics();
        if hits > 0 {
            t.add(m.substrate_hits, hits);
        }
        if misses > 0 {
            t.add(m.substrate_misses, misses);
        }
        if generations > 0 {
            t.add(m.substrate_generations, generations);
        }
    }
}

/// Concurrent memoization of [`Scenario::generate`] — see the
/// [module docs](self).
#[derive(Debug, Default)]
pub struct SubstrateCache {
    /// `None` = passthrough mode (count generations, memoize nothing).
    entries: Option<Mutex<HashMap<SubstrateKey, SubstrateCell>>>,
    generations: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Counter snapshot of a cache's activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Scenarios actually generated (the expensive path).
    pub generations: u64,
    /// Requests served from memory.
    pub hits: u64,
    /// Requests that had to generate (or found generation in flight).
    pub misses: u64,
}

impl SubstrateCache {
    /// An empty memoizing cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: Some(Mutex::new(HashMap::new())),
            ..Self::default()
        }
    }

    /// A cache that never memoizes: every request generates. Keeps the
    /// same counters, so benches can run cached and uncached arms through
    /// one code path.
    #[must_use]
    pub fn passthrough() -> Self {
        Self::default()
    }

    /// The scenario for `(config, seed)`, generated at most once for a
    /// memoizing cache. Bit-identical to `Scenario::generate(config, seed)`.
    ///
    /// # Panics
    ///
    /// Propagates [`Scenario::generate`] panics (invalid configuration).
    #[must_use]
    pub fn scenario(&self, config: &ScenarioConfig, seed: u64) -> Arc<Scenario> {
        let Some(entries) = &self.entries else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.generations.fetch_add(1, Ordering::Relaxed);
            mirror_to_telemetry(0, 1, 1);
            let _span = rit_telemetry::span(rit_telemetry::SpanKind::SubstrateGen);
            return Arc::new(Scenario::generate(config, seed));
        };
        let key = SubstrateKey::new(config, seed);
        let cell = {
            let mut map = entries.lock().expect("substrate cache poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        if let Some(hit) = cell.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            mirror_to_telemetry(1, 0, 0);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        mirror_to_telemetry(0, 1, 0);
        // First caller generates; concurrent callers of the same key block
        // here (and only here) until the scenario is ready.
        Arc::clone(cell.get_or_init(|| {
            self.generations.fetch_add(1, Ordering::Relaxed);
            mirror_to_telemetry(0, 0, 1);
            let _span = rit_telemetry::span(rit_telemetry::SpanKind::SubstrateGen);
            Arc::new(Scenario::generate(config, seed))
        }))
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            generations: self.generations.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Scenarios actually generated so far.
    #[must_use]
    pub fn generations(&self) -> u64 {
        self.generations.load(Ordering::Relaxed)
    }

    /// Number of distinct substrates held (0 for a passthrough cache).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
            .as_ref()
            .map_or(0, |e| e.lock().expect("substrate cache poisoned").len())
    }

    /// Whether the cache holds no substrates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every held substrate (counters keep running).
    pub fn clear(&self) {
        if let Some(entries) = &self.entries {
            entries.lock().expect("substrate cache poisoned").clear();
        }
    }
}

/// How an experiment sources its per-replication substrates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SubstrateMode {
    /// A fresh substrate per replication — the paper's "averaged over 1000
    /// times" semantics. The cache is bypassed (memoizing every draw would
    /// hold R scenarios alive for zero hits).
    #[default]
    PerReplication,
    /// Rotate replications over `k` distinct substrates per configuration:
    /// replication `r` uses substrate `r % k`, so generation cost is paid
    /// `k` times regardless of `R` and mechanism randomness still varies
    /// per replication. `Rotating(k ≥ R)` degenerates to per-replication
    /// statistics at full generation cost.
    Rotating(usize),
}

impl SubstrateMode {
    /// The substrate slot replication `r` draws from, or `None` for a
    /// fresh per-replication substrate.
    ///
    /// # Panics
    ///
    /// Panics on `Rotating(0)`.
    #[must_use]
    pub fn slot(self, replication: usize) -> Option<usize> {
        match self {
            Self::PerReplication => None,
            Self::Rotating(k) => {
                assert!(k > 0, "Rotating(0) has no substrates");
                Some(replication % k)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::parallel_map;

    fn config() -> ScenarioConfig {
        ScenarioConfig::paper(120)
    }

    #[test]
    fn cached_scenario_is_bit_identical_to_fresh_for_every_graph_model() {
        let models = [
            GraphModel::BarabasiAlbert { m: 3 },
            GraphModel::ErdosRenyi { p: 0.04 },
            GraphModel::WattsStrogatz { k: 4, beta: 0.2 },
        ];
        let cache = SubstrateCache::new();
        for (i, model) in models.into_iter().enumerate() {
            let mut config = config();
            config.graph = model;
            let seed = 9 + i as u64;
            // Warm the entry, then read it back as a hit.
            let _ = cache.scenario(&config, seed);
            let cached = cache.scenario(&config, seed);
            let fresh = Scenario::generate(&config, seed);
            assert_eq!(cached.asks, fresh.asks, "asks diverged for {model:?}");
            assert_eq!(cached.tree, fresh.tree, "tree diverged for {model:?}");
            assert_eq!(
                cached.population.as_slice(),
                fresh.population.as_slice(),
                "profiles diverged for {model:?}"
            );
        }
        assert_eq!(cache.generations(), 3);
        assert_eq!(cache.stats().hits, 3);
    }

    #[test]
    fn generation_happens_once_per_key() {
        let cache = SubstrateCache::new();
        for _ in 0..5 {
            let _ = cache.scenario(&config(), 1);
            let _ = cache.scenario(&config(), 2);
        }
        assert_eq!(cache.generations(), 2);
        assert_eq!(cache.len(), 2);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 10);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn distinct_configs_are_distinct_keys() {
        let cache = SubstrateCache::new();
        let a = config();
        let mut b = config();
        b.graph = crate::scenario::GraphModel::ErdosRenyi { p: 0.05 };
        let mut c = config();
        c.workload.cost_max = 5.0;
        let _ = cache.scenario(&a, 1);
        let _ = cache.scenario(&b, 1);
        let _ = cache.scenario(&c, 1);
        assert_eq!(cache.generations(), 3);
    }

    #[test]
    fn concurrent_hits_generate_once() {
        let cache = SubstrateCache::new();
        let scenarios = parallel_map(16, |_| cache.scenario(&config(), 7));
        assert_eq!(cache.generations(), 1);
        for s in &scenarios {
            assert!(Arc::ptr_eq(s, &scenarios[0]), "all callers share one Arc");
        }
    }

    #[test]
    fn passthrough_regenerates_every_time() {
        let cache = SubstrateCache::passthrough();
        let a = cache.scenario(&config(), 3);
        let b = cache.scenario(&config(), 3);
        assert_eq!(cache.generations(), 2);
        assert!(cache.is_empty());
        assert_eq!(a.asks, b.asks);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cache = SubstrateCache::new();
        let _ = cache.scenario(&config(), 1);
        cache.clear();
        assert!(cache.is_empty());
        let _ = cache.scenario(&config(), 1);
        assert_eq!(cache.generations(), 2);
    }

    #[test]
    fn rotating_mode_maps_replications_to_slots() {
        assert_eq!(SubstrateMode::PerReplication.slot(5), None);
        assert_eq!(SubstrateMode::Rotating(4).slot(0), Some(0));
        assert_eq!(SubstrateMode::Rotating(4).slot(7), Some(3));
        assert_eq!(SubstrateMode::Rotating(1).slot(999), Some(0));
    }
}
