//! Property-based equivalence of the two campaign recruitment paths.
//!
//! [`rit_sim::campaign::run_with_mode`] advances recruitment either by
//! extending a checkpointed cascade (`Incremental`, O(new joins) per epoch)
//! or by replaying the whole cascade from round 0 (`Replay`, the pre-cache
//! behavior). The modes must be interchangeable: every reported number —
//! epoch metrics, lifetime earnings, join epochs — bit-identical.

use proptest::prelude::*;
use rit_model::workload::WorkloadConfig;
use rit_sim::campaign::{run_with_mode, CampaignConfig, RecruitmentMode};

fn arb_config() -> impl Strategy<Value = CampaignConfig> {
    (
        2usize..5,     // num_jobs
        120usize..400, // universe
        10usize..40,   // initial_target
        0usize..30,    // growth_per_epoch
        0.3f64..0.95,  // invite_prob
        2usize..5,     // num_types
        3u64..12,      // tasks_per_type
    )
        .prop_map(
            |(num_jobs, universe, initial_target, growth, invite_prob, num_types, tasks)| {
                CampaignConfig {
                    num_jobs,
                    universe,
                    initial_target,
                    growth_per_epoch: growth,
                    invite_prob,
                    workload: WorkloadConfig {
                        num_types,
                        capacity_max: 6,
                        cost_max: 10.0,
                    },
                    tasks_per_type: tasks,
                }
            },
        )
}

proptest! {
    // Each case runs two full campaigns (several RIT auctions each), so
    // keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_and_replay_reports_are_bit_identical(
        config in arb_config(),
        seed in any::<u64>(),
    ) {
        let incremental = run_with_mode(&config, seed, RecruitmentMode::Incremental)
            .expect("campaign runs");
        let replay = run_with_mode(&config, seed, RecruitmentMode::Replay)
            .expect("campaign runs");
        prop_assert_eq!(incremental, replay);
    }
}

#[test]
fn default_mode_is_incremental() {
    let config = CampaignConfig {
        num_jobs: 3,
        universe: 300,
        initial_target: 30,
        growth_per_epoch: 20,
        invite_prob: 0.6,
        workload: WorkloadConfig {
            num_types: 3,
            capacity_max: 6,
            cost_max: 10.0,
        },
        tasks_per_type: 8,
    };
    let via_run = rit_sim::campaign::run(&config, 7).expect("campaign runs");
    let explicit = run_with_mode(&config, 7, RecruitmentMode::Incremental).expect("campaign runs");
    assert_eq!(via_run, explicit);
    assert_eq!(RecruitmentMode::default(), RecruitmentMode::Incremental);
}
