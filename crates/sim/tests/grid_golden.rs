//! Golden-CSV equivalence tests for the grid-engine experiment drivers.
//!
//! Every experiment module now runs through [`rit_sim::grid`]; these tests
//! pin the rendered CSV of each adapter on a small fixed-seed
//! configuration, so any future scheduler or port change that silently
//! shifts a number fails loudly. The same pass also renders everything at
//! 1 and 4 worker threads and asserts the bytes agree — the engine's
//! thread-count-independence contract, end to end through the public
//! drivers.
//!
//! The timing figures (fig8a/fig8b, wall-clock seconds) are deliberately
//! absent: they are the one nondeterministic output of the harness.
//!
//! Golden files live in `tests/golden/*.csv` and follow the same
//! bless-explicitly pattern as `rit-core`'s `engine_equivalence` test: they
//! are (re)generated only when `RIT_BLESS=1` is set, and a missing golden
//! without `RIT_BLESS=1` is a hard failure. See `tests/golden/README.md`
//! for why the files are gitignored and minted per-toolchain rather than
//! committed.

use rit_sim::attacks::{self, AttackSuiteConfig};
use rit_sim::experiments::{
    ablation, bound_check, compare, fig9, quality_screening, robustness, sweeps, tree_shape,
    truthfulness_profile, Scale,
};
use rit_sim::substrate::SubstrateMode;

const SEED: u64 = 2017;
const RUNS: usize = 2;

/// Renders every grid-backed driver at smoke scale with a fixed seed and
/// returns `(golden file stem, CSV bytes)` pairs.
fn render_all() -> Vec<(&'static str, String)> {
    let mut out = Vec::new();

    let user = sweeps::user_sweep(&sweeps::SweepConfig::new(Scale::Smoke, RUNS, SEED));
    out.push(("fig6a", sweeps::utility_figure(&user).to_csv()));
    out.push(("fig7a", sweeps::payment_figure(&user).to_csv()));
    let task = sweeps::task_sweep(&sweeps::SweepConfig::new(Scale::Smoke, RUNS, SEED));
    out.push(("fig6b", sweeps::utility_figure(&task).to_csv()));
    out.push(("fig7b", sweeps::payment_figure(&task).to_csv()));

    out.push((
        "fig9",
        fig9::run(&fig9::Fig9Config {
            scale: Scale::Smoke,
            runs: RUNS,
            seed: SEED,
        })
        .to_csv(),
    ));

    let ablation_config = ablation::AblationConfig::new(Scale::Smoke, RUNS, SEED);
    out.push((
        "ablation_collusion",
        ablation::collusion(&ablation_config).to_csv(),
    ));
    out.push((
        "ablation_rounds",
        ablation::round_budget(&ablation_config).to_csv(),
    ));

    out.push((
        "bound_check",
        bound_check::run(&bound_check::BoundCheckConfig {
            scale: Scale::Smoke,
            runs: RUNS,
            inner_runs: 8,
            seed: SEED,
            k: 10,
        })
        .to_csv(),
    ));
    out.push((
        "robustness",
        robustness::run(&robustness::RobustnessConfig {
            scale: Scale::Smoke,
            runs: RUNS,
            seed: SEED,
        })
        .to_csv(),
    ));
    out.push((
        "tree_shape",
        tree_shape::run(&tree_shape::TreeShapeConfig {
            scale: Scale::Smoke,
            runs: RUNS,
            seed: SEED,
        })
        .to_csv(),
    ));
    out.push((
        "truthfulness_profile",
        truthfulness_profile::run(&truthfulness_profile::ProfileConfig {
            scale: Scale::Smoke,
            runs: RUNS,
            seed: SEED,
        })
        .to_csv(),
    ));

    // Screening twice: the paper-fidelity fresh-substrate path and the
    // rotating shared-cache path are distinct scheduler code paths.
    let mut screening = quality_screening::ScreeningConfig::new(Scale::Smoke, RUNS, SEED);
    out.push((
        "quality_screening",
        quality_screening::run(&screening).to_csv(),
    ));
    screening.substrate = SubstrateMode::Rotating(2);
    out.push((
        "quality_screening_rotating",
        quality_screening::run(&screening).to_csv(),
    ));

    out.push((
        "attack_suite",
        attacks::run(
            &AttackSuiteConfig {
                scale: Scale::Smoke,
                runs: 4,
                seed: SEED,
            },
            None,
        )
        .expect("smoke attack suite runs")
        .to_table()
        .to_csv(),
    ));
    out.push((
        "compare",
        compare::run(&compare::CompareConfig::quick(SEED))
            .expect("smoke comparison runs")
            .to_table()
            .to_csv(),
    ));

    out
}

/// One test (not one per driver) because the thread override is
/// process-global: parallel test threads toggling it would race.
#[test]
fn grid_drivers_match_goldens_and_are_thread_count_independent() {
    rit_sim::runner::set_thread_override(1);
    let at1 = render_all();
    rit_sim::runner::set_thread_override(4);
    let at4 = render_all();
    rit_sim::runner::set_thread_override(0);

    for ((name, csv1), (name4, csv4)) in at1.iter().zip(&at4) {
        assert_eq!(name, name4);
        assert_eq!(
            csv1, csv4,
            "{name}: CSV differs between 1 and 4 worker threads — the grid \
             scheduler leaked thread count into results"
        );
    }

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let blessing = std::env::var("RIT_BLESS").is_ok_and(|v| v == "1");
    if blessing {
        std::fs::create_dir_all(&dir).unwrap();
        for (name, csv) in &at1 {
            let path = dir.join(format!("{name}.csv"));
            std::fs::write(&path, csv).unwrap();
            eprintln!("blessed golden file at {}", path.display());
        }
        return;
    }
    for (name, csv) in &at1 {
        let path = dir.join(format!("{name}.csv"));
        let want = match std::fs::read_to_string(&path) {
            Ok(want) => want,
            Err(e) => panic!(
                "missing golden file {}: {e}\n\
                 run `RIT_BLESS=1 cargo test -p rit-sim --test grid_golden` \
                 and keep the generated files for the comparison run",
                path.display()
            ),
        };
        assert_eq!(
            csv,
            &want,
            "{name}: golden mismatch — if the change is intentional, \
             re-bless {} with RIT_BLESS=1",
            path.display()
        );
    }
}
