//! Integration tests of the simulation harness: figure regeneration,
//! determinism, and output rendering.

use rit_sim::experiments::{ablation, fig9, sweeps, Scale};
use rit_sim::metrics::Figure;

fn smoke_sweep() -> sweeps::SweepConfig {
    sweeps::SweepConfig::new(Scale::Smoke, 3, 99)
}

fn assert_renders(figure: &Figure) {
    let md = figure.to_markdown();
    assert!(md.contains(figure.id));
    let csv = figure.to_csv();
    assert_eq!(csv.lines().count(), 1 + figure.series[0].points.len());
    // Every series name appears in the CSV header.
    for s in &figure.series {
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .contains(&s.name.replace(',', ";")));
    }
}

#[test]
fn every_figure_regenerates_at_smoke_scale() {
    let user_data = sweeps::user_sweep(&smoke_sweep());
    let task_data = sweeps::task_sweep(&smoke_sweep());
    let figures = vec![
        sweeps::utility_figure(&user_data),
        sweeps::payment_figure(&user_data),
        sweeps::runtime_figure(&user_data),
        sweeps::utility_figure(&task_data),
        sweeps::payment_figure(&task_data),
        sweeps::runtime_figure(&task_data),
        fig9::run(&fig9::Fig9Config {
            scale: Scale::Smoke,
            runs: 2,
            seed: 99,
        }),
        ablation::collusion(&ablation::AblationConfig::new(Scale::Smoke, 2, 99)),
        ablation::round_budget(&ablation::AblationConfig::new(Scale::Smoke, 2, 99)),
    ];
    let ids: Vec<&str> = figures.iter().map(|f| f.id).collect();
    assert_eq!(
        ids,
        vec![
            "fig6a",
            "fig7a",
            "fig8a",
            "fig6b",
            "fig7b",
            "fig8b",
            "fig9",
            "ablation_collusion",
            "ablation_rounds"
        ]
    );
    for f in &figures {
        assert!(!f.series.is_empty(), "{} has no series", f.id);
        assert!(
            f.series.iter().all(|s| !s.points.is_empty()),
            "{} has an empty series",
            f.id
        );
        assert_renders(f);
    }
}

#[test]
fn sweeps_are_deterministic_in_everything_but_time() {
    let a = sweeps::user_sweep(&smoke_sweep());
    let b = sweeps::user_sweep(&smoke_sweep());
    assert_eq!(a.points.len(), b.points.len());
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.x, pb.x);
        assert_eq!(pa.utility_rit, pb.utility_rit);
        assert_eq!(pa.payment_rit, pb.payment_rit);
        assert_eq!(pa.completion_rate, pb.completion_rate);
        // Runtime metrics are wall-clock and may differ; everything else
        // must be bit-identical.
    }
}

#[test]
fn different_seeds_change_results() {
    let a = sweeps::task_sweep(&smoke_sweep());
    let b = sweeps::task_sweep(&sweeps::SweepConfig {
        seed: 100,
        ..smoke_sweep()
    });
    let same = a
        .points
        .iter()
        .zip(&b.points)
        .all(|(x, y)| x.utility_rit == y.utility_rit);
    assert!(!same, "different seeds should perturb the metrics");
}

#[test]
fn fig9_series_names_follow_paper() {
    let fig = fig9::run(&fig9::Fig9Config {
        scale: Scale::Smoke,
        runs: 2,
        seed: 1,
    });
    let names: Vec<&str> = fig.series.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "a29 = 5.5",
            "a29 = 6.25",
            "a29 = 6.5",
            "truthful, no attack"
        ]
    );
    // x values are the identity counts, ascending.
    for s in &fig.series {
        let xs: Vec<f64> = s.points.iter().map(|p| p.x).collect();
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(xs, sorted);
        assert!(xs[0] >= 2.0);
    }
}
