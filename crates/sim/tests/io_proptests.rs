//! Property tests of the CSV interchange formats: round trips for valid
//! data, graceful errors (never panics) for arbitrary junk.

use proptest::prelude::*;
use rit_model::{Ask, Job, TaskTypeId};
use rit_sim::io;
use rit_tree::{IncentiveTree, NodeId};

proptest! {
    #[test]
    fn asks_round_trip(
        specs in prop::collection::vec((0u32..50, 1u64..1000, 0.001f64..1e6), 0..100),
    ) {
        let asks: Vec<Ask> = specs
            .iter()
            .map(|&(t, k, a)| Ask::new(TaskTypeId::new(t), k, a).unwrap())
            .collect();
        let parsed = io::parse_asks(&io::render_asks(&asks)).unwrap();
        prop_assert_eq!(parsed, asks);
    }

    #[test]
    fn tree_round_trip(choices in prop::collection::vec(any::<u32>(), 0..120)) {
        let parents: Vec<NodeId> = choices
            .iter()
            .enumerate()
            .map(|(i, &c)| NodeId::new(c % (i as u32 + 1)))
            .collect();
        let tree = IncentiveTree::from_parents(&parents).unwrap();
        let parsed = io::parse_tree(&io::render_tree(&tree)).unwrap();
        prop_assert_eq!(parsed, tree);
    }

    #[test]
    fn job_round_trip(counts in prop::collection::vec(0u64..100_000, 1..40)) {
        let job = Job::from_counts(counts).unwrap();
        let parsed = io::parse_job(&io::render_job(&job)).unwrap();
        prop_assert_eq!(parsed, job);
    }

    // Fuzz: arbitrary text must yield Ok or a structured error — never panic.
    #[test]
    fn parse_asks_never_panics(text in "\\PC{0,300}") {
        let _ = io::parse_asks(&text);
    }

    #[test]
    fn parse_tree_never_panics(text in "\\PC{0,300}") {
        let _ = io::parse_tree(&text);
    }

    #[test]
    fn parse_job_never_panics(text in "\\PC{0,300}") {
        let _ = io::parse_job(&text);
    }

    // Fuzz with a valid header but arbitrary body lines.
    #[test]
    fn parse_with_valid_header_never_panics(body in "[0-9a-z,.\\-\n ]{0,300}") {
        let _ = io::parse_asks(&format!("user,task_type,quantity,unit_price\n{body}"));
        let _ = io::parse_tree(&format!("node,parent\n{body}"));
        let _ = io::parse_job(&format!("task_type,tasks\n{body}"));
    }
}
