//! The parallel auction phase on harness-generated scenarios: every
//! [`GraphModel`] and [`SubstrateMode`] yields outcomes that are independent
//! of the worker-thread count, and cached substrates behave exactly like
//! fresh ones.

use rit_core::{NoopObserver, Rit, RitConfig, RitWorkspace, RngMode, RoundLimit, WorkspacePool};
use rit_model::Job;
use rit_sim::scenario::{GraphModel, Scenario, ScenarioConfig};
use rit_sim::substrate::{SubstrateCache, SubstrateMode};

fn models() -> [GraphModel; 3] {
    [
        GraphModel::BarabasiAlbert { m: 3 },
        GraphModel::ErdosRenyi { p: 0.03 },
        GraphModel::WattsStrogatz { k: 6, beta: 0.15 },
    ]
}

fn rit() -> Rit {
    Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .unwrap()
}

#[test]
fn streams_phase_thread_invariant_on_every_graph_model() {
    let job = Job::from_counts(vec![40, 0, 55, 25]).unwrap();
    let rit = rit();
    for (i, model) in models().into_iter().enumerate() {
        let mut config = ScenarioConfig::paper(400);
        config.workload.num_types = 4;
        config.graph = model;
        let scenario = Scenario::generate(&config, 70 + i as u64);

        let mut reference = None;
        for threads in [1usize, 2, 4, 8] {
            let mut ws = RitWorkspace::new();
            let pool = WorkspacePool::new();
            let phase = rit
                .run_auction_phase_streams_with(
                    &job,
                    &scenario.asks,
                    9_000 + i as u64,
                    threads,
                    &mut ws,
                    &pool,
                    &mut NoopObserver,
                )
                .unwrap();
            let outcome = rit.determine_final_payments(&scenario.tree, &scenario.asks, phase);
            match &reference {
                None => reference = Some(outcome),
                Some(r) => assert_eq!(
                    &outcome, r,
                    "outcome diverged for {model:?} at {threads} threads"
                ),
            }
        }
    }
}

#[test]
fn substrate_modes_agree_on_seeded_outcomes() {
    // Rotating substrates come out of the cache; per-replication substrates
    // are generated fresh. For the same (config, seed) both paths must feed
    // the mechanism bit-identical scenarios — pinned here end-to-end through
    // a seeded run in each RngMode.
    let job = Job::from_counts(vec![30, 45]).unwrap();
    let rit = rit();
    let mut config = ScenarioConfig::paper(300);
    config.workload.num_types = 2;
    let cache = SubstrateCache::new();

    for replication in 0..4usize {
        let seed = 500 + replication as u64;
        let slot = SubstrateMode::Rotating(2).slot(replication).unwrap();
        assert_eq!(slot, replication % 2);
        assert_eq!(SubstrateMode::PerReplication.slot(replication), None);

        let rotating = Scenario::generate_cached(&cache, &config, 500 + slot as u64);
        let fresh = Scenario::generate(&config, 500 + slot as u64);
        assert_eq!(rotating.asks, fresh.asks);
        assert_eq!(rotating.tree, fresh.tree);

        for mode in RngMode::ALL {
            let from_cache = rit
                .run_seeded(&job, &rotating.tree, &rotating.asks, mode, seed)
                .unwrap();
            let from_fresh = rit
                .run_seeded(&job, &fresh.tree, &fresh.asks, mode, seed)
                .unwrap();
            assert_eq!(
                from_cache, from_fresh,
                "{mode} outcome diverged between cached and fresh substrates"
            );
        }
    }
    // Two rotating slots were generated; the second pass over each was a hit.
    assert_eq!(cache.generations(), 2);
}
