//! Resume determinism: a grid run restored from *any* prefix of a
//! checkpoint file produces byte-identical output to an uninterrupted run.
//!
//! The checkpoint/fault machinery is process-global (like the thread
//! override), so every test here serializes on one local mutex; each test
//! clears the global state before and after its runs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use proptest::prelude::*;
use rit_sim::experiments::{sweeps, Scale};
use rit_sim::grid::{run_grid_with_threads, CellCtx, CellRun, GridSpec};
use rit_sim::io::{Table, Value};
use rit_sim::substrate::SubstrateCache;
use rit_sim::{checkpoint, faults};

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fresh temp path per call; the process id keeps concurrent test
/// binaries apart, the counter keeps sequential tests apart.
fn temp_path(stem: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rit_resume_{stem}_{}_{n}.jsonl",
        std::process::id()
    ))
}

/// Toy checkpointable adapter: the record is a seed-derived f64 (with an
/// occasional `NaN` to exercise the null round trip), deterministic in the
/// item context alone.
struct ToyRun;

impl CellRun for ToyRun {
    type Cell = u64;
    type Workspace = ();
    type Record = f64;

    fn workspace(&self) {}

    fn salt(&self, cell_index: usize, _cell: &u64) -> u64 {
        cell_index as u64
    }

    fn run(&self, ctx: &CellCtx<'_, u64>, (): &mut ()) -> f64 {
        if ctx.seed.is_multiple_of(7) {
            f64::NAN
        } else {
            (ctx.seed % 100_003) as f64 * 1.0e-3 + *ctx.cell as f64
        }
    }

    fn checkpoint_columns(&self) -> Option<&'static [&'static str]> {
        Some(&["value"])
    }

    fn encode_record(&self, record: &f64) -> Vec<Value> {
        vec![Value::F64(*record)]
    }

    fn decode_record(&self, fields: &[Value]) -> Option<f64> {
        match fields {
            [Value::F64(v)] => Some(*v),
            _ => None,
        }
    }
}

/// Renders grid rows as the CSV an experiment would write, for byte
/// comparison.
fn rows_to_csv(rows: &[Vec<f64>]) -> String {
    let mut table = Table::new(vec!["cell", "replication", "value"]);
    for (ci, row) in rows.iter().enumerate() {
        for (r, v) in row.iter().enumerate() {
            table.push_row(vec![
                Value::U64(ci as u64),
                Value::U64(r as u64),
                Value::F64(*v),
            ]);
        }
    }
    table.to_csv()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The core resume contract: truncate the checkpoint to an arbitrary
    /// prefix, resume at 1 or 4 worker threads, and the CSV bytes match an
    /// uninterrupted run exactly.
    #[test]
    fn resume_from_any_prefix_is_byte_identical(
        num_cells in 1usize..5,
        replications in 1usize..5,
        seed in 0u64..1_000,
        prefix_permille in 0u32..1001,
        four_threads in any::<bool>(),
    ) {
        let threads = if four_threads { 4 } else { 1 };
        let _guard = guard();
        checkpoint::clear_checkpoint();
        let cells: Vec<u64> = (0..num_cells as u64).collect();
        let spec = GridSpec::new("resume_prop", replications, seed)
            .with_axis("size", num_cells);
        let ckpt = temp_path("prop");

        // Uninterrupted reference, writing the full checkpoint.
        checkpoint::set_checkpoint(&ckpt, false).unwrap();
        let reference = run_grid_with_threads(
            &spec, &cells, &ToyRun, &SubstrateCache::passthrough(), threads,
        );
        checkpoint::clear_checkpoint();
        let reference_csv = rows_to_csv(&reference);

        // Truncate to an arbitrary prefix of completed items.
        let full = std::fs::read_to_string(&ckpt).unwrap();
        let lines: Vec<&str> = full.lines().collect();
        let keep = lines.len() * prefix_permille as usize / 1000;
        let mut prefix = lines[..keep].join("\n");
        if keep > 0 {
            prefix.push('\n');
        }
        std::fs::write(&ckpt, prefix).unwrap();

        // Resume: restored items are skipped, the rest re-run.
        let restored = checkpoint::set_checkpoint(&ckpt, true).unwrap();
        prop_assert_eq!(restored, keep);
        let resumed = run_grid_with_threads(
            &spec, &cells, &ToyRun, &SubstrateCache::passthrough(), threads,
        );
        checkpoint::clear_checkpoint();
        let _ = std::fs::remove_file(&ckpt);

        let resumed_csv = rows_to_csv(&resumed);
        prop_assert_eq!(resumed_csv, reference_csv);
    }
}

/// A run killed mid-flight by an injected panic checkpoints only the items
/// that completed; resuming without the fault finishes the grid with output
/// byte-identical to a never-faulted run.
#[test]
fn faulted_then_resumed_run_matches_a_clean_run() {
    let _guard = guard();
    checkpoint::clear_checkpoint();
    faults::set_fault_plan(None);
    let cells: Vec<u64> = (0..4).collect();
    let spec = GridSpec::new("resume_fault", 3, 11).with_axis("size", 4);

    let clean = run_grid_with_threads(&spec, &cells, &ToyRun, &SubstrateCache::passthrough(), 2);
    let clean_csv = rows_to_csv(&clean);

    // Faulted pass: cell 2 panics through both attempts and is quarantined;
    // everything else lands in the checkpoint.
    let ckpt = temp_path("fault");
    checkpoint::set_checkpoint(&ckpt, false).unwrap();
    faults::set_fault_plan(Some(
        faults::FaultPlan::parse("panic@resume_fault/2").unwrap(),
    ));
    let faulted = run_grid_with_threads(&spec, &cells, &ToyRun, &SubstrateCache::passthrough(), 2);
    faults::set_fault_plan(None);
    checkpoint::clear_checkpoint();
    assert!(faulted[2].is_empty(), "faulted cell must be quarantined");
    let failures = rit_sim::grid::take_failures();
    assert_eq!(failures.len(), 3, "one failure per replication of cell 2");

    // Quarantined items must not have been checkpointed.
    let recorded = std::fs::read_to_string(&ckpt).unwrap();
    assert_eq!(
        recorded.lines().count(),
        3 * 3,
        "only the 9 completed items"
    );
    assert!(!recorded.contains("\"cell\":2"), "{recorded}");

    // Resume without the fault: the quarantined cell re-runs, the rest are
    // restored, and the bytes match the clean run.
    let restored = checkpoint::set_checkpoint(&ckpt, true).unwrap();
    assert_eq!(restored, 9);
    let resumed = run_grid_with_threads(&spec, &cells, &ToyRun, &SubstrateCache::passthrough(), 2);
    checkpoint::clear_checkpoint();
    let _ = std::fs::remove_file(&ckpt);
    assert_eq!(rows_to_csv(&resumed), clean_csv);
    assert!(rit_sim::grid::take_failures().is_empty());
}

/// End to end through a real driver: a user sweep resumed from a half-done
/// checkpoint renders byte-identical figure CSVs at both thread counts.
#[test]
fn real_sweep_resumes_byte_identical() {
    let _guard = guard();
    checkpoint::clear_checkpoint();
    let config = sweeps::SweepConfig::new(Scale::Smoke, 2, 2017);

    for threads in [1usize, 4] {
        rit_sim::runner::set_thread_override(threads);
        let ckpt = temp_path("sweep");
        checkpoint::set_checkpoint(&ckpt, false).unwrap();
        let reference = sweeps::user_sweep(&config);
        checkpoint::clear_checkpoint();
        let ref_utility = sweeps::utility_figure(&reference).to_csv();
        let ref_payment = sweeps::payment_figure(&reference).to_csv();

        let full = std::fs::read_to_string(&ckpt).unwrap();
        let lines: Vec<&str> = full.lines().collect();
        assert!(!lines.is_empty(), "sweep must have checkpointed items");
        let keep = lines.len() / 2;
        let mut prefix = lines[..keep].join("\n");
        prefix.push('\n');
        std::fs::write(&ckpt, prefix).unwrap();

        let restored = checkpoint::set_checkpoint(&ckpt, true).unwrap();
        assert_eq!(restored, keep);
        let resumed = sweeps::user_sweep(&config);
        checkpoint::clear_checkpoint();
        let _ = std::fs::remove_file(&ckpt);

        assert_eq!(
            sweeps::utility_figure(&resumed).to_csv(),
            ref_utility,
            "fig6a bytes diverged after resume at {threads} threads"
        );
        assert_eq!(
            sweeps::payment_figure(&resumed).to_csv(),
            ref_payment,
            "fig7a bytes diverged after resume at {threads} threads"
        );
    }
    rit_sim::runner::set_thread_override(0);
}
