//! End-to-end flow of the global telemetry through the sim layer: installing
//! a sink-backed [`rit_telemetry::Telemetry`] changes no experiment result,
//! and the JSONL file carries the manifest first, streamed epoch/attack
//! events, and flush-time metric summaries.
//!
//! One test only: the global instance installs once per process, and the
//! baselines must run *before* it exists to prove the untelemetered and
//! telemetered paths agree.

use rit_core::RoundLimit;
use rit_model::Job;
use rit_sim::attacks::{self, AttackSuiteConfig};
use rit_sim::campaign::{self, CampaignConfig};
use rit_sim::experiments::{paper_mechanism, run_once, Scale};
use rit_sim::runner::parallel_map_with_threads;
use rit_sim::scenario::{Scenario, ScenarioConfig};
use rit_sim::substrate::SubstrateCache;
use rit_telemetry::{RunManifest, Telemetry};

#[test]
fn installing_telemetry_changes_no_result_and_streams_events() {
    let scenario_config = {
        let mut c = ScenarioConfig::paper(400);
        c.workload.num_types = 2;
        c
    };
    let scenario = Scenario::generate(&scenario_config, 5);
    let job = Job::from_counts(vec![60, 60]).unwrap();
    let rit = paper_mechanism(RoundLimit::until_stall());
    let campaign_config = {
        let mut c = CampaignConfig::small();
        c.num_jobs = 3;
        c
    };
    let attack_config = AttackSuiteConfig {
        scale: Scale::Smoke,
        runs: 3,
        seed: 11,
    };

    // Baselines, before any telemetry exists in the process. The rendered
    // CSV artifacts are kept as byte strings: the contract is not just
    // equal structs but byte-identical experiment outputs with spans
    // enabled vs disabled.
    let base_run = run_once(&rit, &job, &scenario, 42);
    let base_campaign = campaign::run(&campaign_config, 11).unwrap();
    let base_suite = attacks::run(&attack_config, None).unwrap();
    let base_campaign_csv = campaign::to_figure(&base_campaign).to_csv();
    let base_suite_csv = base_suite.to_table().to_csv();

    // Install the global instance with a JSONL sink.
    let dir = std::env::temp_dir().join("rit_sim_telemetry_flow_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("telemetry.jsonl");
    let manifest = RunManifest::new("telemetry-flow-test", "0", "flow", 42, 2);
    let telemetry = rit_telemetry::install(Telemetry::with_sink(manifest, &path).unwrap()).unwrap();

    // Rerun everything: bit-identical results under observation.
    let obs_run = run_once(&rit, &job, &scenario, 42);
    assert_eq!(obs_run.avg_utility_auction, base_run.avg_utility_auction);
    assert_eq!(obs_run.avg_utility_rit, base_run.avg_utility_rit);
    assert_eq!(
        obs_run.total_payment_auction,
        base_run.total_payment_auction
    );
    assert_eq!(obs_run.total_payment_rit, base_run.total_payment_rit);
    assert_eq!(obs_run.completed, base_run.completed);
    let obs_campaign = campaign::run(&campaign_config, 11).unwrap();
    let obs_suite = attacks::run(&attack_config, None).unwrap();
    assert_eq!(obs_campaign, base_campaign);
    assert_eq!(obs_suite, base_suite);
    // Byte-for-byte identical CSV artifacts under span recording.
    assert_eq!(
        campaign::to_figure(&obs_campaign).to_csv(),
        base_campaign_csv
    );
    assert_eq!(obs_suite.to_table().to_csv(), base_suite_csv);

    // Exercise the remaining instrumented surfaces: the substrate cache
    // (one miss+generation, one hit) and a parallel map (worker items).
    let cache = SubstrateCache::new();
    let _ = cache.scenario(&scenario_config, 5);
    let _ = cache.scenario(&scenario_config, 5);
    let _ = parallel_map_with_threads(8, 2, |i| i * i);

    // The registry saw every layer.
    let m = telemetry.metrics();
    let reg = telemetry.registry();
    assert!(reg.counter(m.auction_rounds) > 0, "auction rounds observed");
    assert!(reg.counter(m.auction_types) > 0);
    assert_eq!(reg.counter(m.substrate_hits), 1);
    assert_eq!(reg.counter(m.substrate_misses), 1);
    assert_eq!(reg.counter(m.substrate_generations), 1);
    assert!(reg.counter(m.worker_items) >= 8);
    assert_eq!(
        reg.counter(m.campaign_epochs),
        campaign_config.num_jobs as u64
    );
    assert_eq!(
        reg.counter(m.attack_replications),
        (attack_config.runs * base_suite.results.len()) as u64
    );
    assert!(reg.histogram_summary(m.round_winners).count > 0);
    assert!(reg.histogram_summary(m.campaign_epoch_micros).count > 0);
    // The span layer recorded at every instrumented seam.
    use rit_telemetry::SpanKind;
    let span_count = |kind: SpanKind| reg.histogram_summary(m.span_micros[kind as usize]).count;
    assert!(span_count(SpanKind::Campaign) >= 1, "campaign spans");
    assert_eq!(
        span_count(SpanKind::Epoch) % campaign_config.num_jobs as u64,
        0
    );
    assert!(span_count(SpanKind::Epoch) > 0, "epoch spans");
    assert!(span_count(SpanKind::AttackProbe) > 0, "attack probe spans");
    assert!(span_count(SpanKind::SubstrateGen) >= 1, "substrate spans");
    assert!(span_count(SpanKind::WorkerItem) >= 8, "worker item spans");
    assert!(span_count(SpanKind::GridCell) > 0, "grid cell spans");

    telemetry.flush().unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let first = text.lines().next().unwrap();
    assert!(
        first.contains("\"event\":\"manifest\"") && first.contains("\"config_hash\""),
        "manifest must be the first line, got: {first}"
    );
    for needle in [
        "\"event\":\"epoch\"",
        "\"event\":\"attack\"",
        "\"event\":\"counter\"",
        "\"event\":\"histogram\"",
        "\"event\":\"span\"",
        "\"name\":\"auction.rounds\"",
        "\"name\":\"worker.item_micros\"",
        "\"name\":\"substrate.generations\"",
        "\"name\":\"campaign.epoch\"",
        "\"name\":\"attack.probe\"",
        "\"name\":\"grid.cell\"",
        "\"name\":\"span.campaign_micros\"",
    ] {
        assert!(text.contains(needle), "telemetry file missing {needle}");
    }
    // Every streamed span event carries the full id/timing payload, and
    // the file as a whole converts to non-empty Chrome trace JSON.
    for line in text.lines().filter(|l| l.contains("\"event\":\"span\"")) {
        for field in [
            "\"id\":",
            "\"parent\":",
            "\"thread\":",
            "\"start_us\":",
            "\"dur_us\":",
        ] {
            assert!(line.contains(field), "span event missing {field}: {line}");
        }
    }
    let (trace_json, slices) = rit_telemetry::chrome_trace(&text);
    assert!(slices > 0, "no span slices exported");
    assert!(trace_json.starts_with("{\"traceEvents\":["));
    // Streamed events land before the flush summaries.
    let epoch_line = text.lines().position(|l| l.contains("\"event\":\"epoch\""));
    let counter_line = text
        .lines()
        .position(|l| l.contains("\"event\":\"counter\""));
    assert!(epoch_line.unwrap() < counter_line.unwrap());
    let _ = std::fs::remove_dir_all(&dir);
}
