//! Probabilistic recruitment diffusion.
//!
//! The paper's §7-A tree construction is deterministic: every user refers
//! *all* of its un-joined neighbors. Real referral cascades are leakier —
//! an invitation reaches a neighbor only with some probability, and users
//! keep inviting over multiple rounds until the platform's threshold `N` is
//! met (or the cascade dies out). This module models that process so
//! experiments can check that RIT's results are not an artifact of the
//! full-diffusion assumption:
//!
//! * seeds join directly (children of the platform), like the paper;
//! * in each round, every member invites each un-joined neighbor
//!   independently with probability `invite_prob`; simultaneous invitations
//!   tie-break to the smallest-index inviter (same rule as
//!   [`crate::spanning`]);
//! * the cascade stops when `target` users joined, when nobody new joined
//!   for a round, or after `max_rounds`.

use rand::Rng;
use rit_tree::{IncentiveTree, NodeId};

use crate::SocialGraph;

/// Parameters of a recruitment cascade.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiffusionConfig {
    /// Per-neighbor, per-round invitation success probability.
    pub invite_prob: f64,
    /// Stop once this many users joined (`None` = run to exhaustion).
    pub target: Option<usize>,
    /// Hard cap on rounds.
    pub max_rounds: u32,
}

impl Default for DiffusionConfig {
    fn default() -> Self {
        Self {
            invite_prob: 0.5,
            target: None,
            max_rounds: 64,
        }
    }
}

/// Result of a cascade: the tree over the *joined* users plus the mapping
/// from tree user indices back to graph node ids.
#[derive(Clone, Debug)]
pub struct DiffusionOutcome {
    /// The incentive tree over joined users (user `j` of the tree is graph
    /// node `joined[j]`).
    pub tree: IncentiveTree,
    /// Graph node of each tree user, in join order.
    pub joined: Vec<u32>,
    /// Rounds the cascade ran.
    pub rounds: u32,
}

/// Runs a recruitment cascade over `graph`, seeded at `seeds` (graph node
/// ids, deduplicated, all joining the platform directly in round 0).
///
/// # Panics
///
/// Panics if `invite_prob` is outside `[0, 1]` or a seed is out of range.
pub fn simulate<R: Rng + ?Sized>(
    graph: &SocialGraph,
    seeds: &[usize],
    config: &DiffusionConfig,
    rng: &mut R,
) -> DiffusionOutcome {
    assert!(
        (0.0..=1.0).contains(&config.invite_prob),
        "invite_prob must be a probability"
    );
    let n = graph.num_nodes();
    const UNJOINED: u32 = u32::MAX;
    // tree parent of each *graph* node (0 = platform, else tree node id).
    let mut parent_of = vec![UNJOINED; n];
    let mut tree_id = vec![0u32; n]; // graph node -> tree node id (valid when joined)
    let mut joined: Vec<u32> = Vec::new();

    let mut frontier: Vec<u32> = Vec::new();
    for &s in seeds {
        assert!(s < n, "seed {s} out of range");
        if parent_of[s] == UNJOINED {
            parent_of[s] = 0;
            joined.push(s as u32);
            tree_id[s] = joined.len() as u32;
            frontier.push(s as u32);
        }
    }
    frontier.sort_unstable();

    let mut rounds = 0u32;
    let mut next: Vec<u32> = Vec::new();
    while !frontier.is_empty()
        && rounds < config.max_rounds
        && config.target.is_none_or(|t| joined.len() < t)
    {
        next.clear();
        'invite: for &inviter in &frontier {
            for &nb in graph.neighbors(inviter as usize) {
                if parent_of[nb as usize] != UNJOINED {
                    continue;
                }
                if rng.gen_bool(config.invite_prob) {
                    parent_of[nb as usize] = tree_id[inviter as usize];
                    joined.push(nb);
                    tree_id[nb as usize] = joined.len() as u32;
                    next.push(nb);
                    if config.target == Some(joined.len()) {
                        break 'invite;
                    }
                }
            }
        }
        next.sort_unstable();
        std::mem::swap(&mut frontier, &mut next);
        rounds += 1;
    }

    // Parents in join order: tree node j+1 is graph node joined[j].
    let parents: Vec<NodeId> = joined
        .iter()
        .map(|&g| NodeId::new(parent_of[g as usize]))
        .collect();
    let tree = IncentiveTree::from_parents(&parents).expect("cascade parents are acyclic");
    DiffusionOutcome {
        tree,
        joined,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn line(n: usize) -> SocialGraph {
        let mut g = SocialGraph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    #[test]
    fn full_probability_reproduces_spanning_bfs() {
        let g = line(6);
        let mut rng = SmallRng::seed_from_u64(1);
        let out = simulate(
            &g,
            &[0],
            &DiffusionConfig {
                invite_prob: 1.0,
                ..DiffusionConfig::default()
            },
            &mut rng,
        );
        assert_eq!(out.tree.num_users(), 6);
        assert_eq!(out.joined, vec![0, 1, 2, 3, 4, 5]);
        // Line graph from one end: a path of depth 6.
        assert_eq!(out.tree.depth(NodeId::from_user_index(5)), 6);
        assert_eq!(out.rounds, 6); // five growth rounds + the final empty one
    }

    #[test]
    fn zero_probability_joins_only_seeds() {
        let g = line(5);
        let mut rng = SmallRng::seed_from_u64(2);
        let out = simulate(
            &g,
            &[2, 4],
            &DiffusionConfig {
                invite_prob: 0.0,
                ..DiffusionConfig::default()
            },
            &mut rng,
        );
        assert_eq!(out.tree.num_users(), 2);
        for u in out.tree.user_nodes() {
            assert_eq!(out.tree.depth(u), 1);
        }
    }

    #[test]
    fn target_caps_membership() {
        let g = crate::generators::barabasi_albert(500, 2, &mut SmallRng::seed_from_u64(3));
        let mut rng = SmallRng::seed_from_u64(4);
        let out = simulate(
            &g,
            &[0],
            &DiffusionConfig {
                invite_prob: 0.8,
                target: Some(100),
                max_rounds: 64,
            },
            &mut rng,
        );
        assert_eq!(out.tree.num_users(), 100);
        assert_eq!(out.joined.len(), 100);
    }

    #[test]
    fn parents_are_graph_neighbors() {
        let g = crate::generators::erdos_renyi(300, 0.02, &mut SmallRng::seed_from_u64(5));
        let mut rng = SmallRng::seed_from_u64(6);
        let out = simulate(&g, &[0, 1, 2], &DiffusionConfig::default(), &mut rng);
        for (j, &gnode) in out.joined.iter().enumerate() {
            let p = out.tree.parent(NodeId::from_user_index(j)).unwrap();
            if let Some(pj) = p.user_index() {
                let pg = out.joined[pj] as usize;
                assert!(g.has_edge(gnode as usize, pg));
            }
        }
    }

    #[test]
    fn duplicate_seeds_deduplicated() {
        let g = line(3);
        let mut rng = SmallRng::seed_from_u64(7);
        let out = simulate(
            &g,
            &[1, 1, 1],
            &DiffusionConfig {
                invite_prob: 0.0,
                ..DiffusionConfig::default()
            },
            &mut rng,
        );
        assert_eq!(out.tree.num_users(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = crate::generators::barabasi_albert(200, 2, &mut SmallRng::seed_from_u64(8));
        let a = simulate(
            &g,
            &[0],
            &DiffusionConfig::default(),
            &mut SmallRng::seed_from_u64(9),
        );
        let b = simulate(
            &g,
            &[0],
            &DiffusionConfig::default(),
            &mut SmallRng::seed_from_u64(9),
        );
        assert_eq!(a.joined, b.joined);
        assert_eq!(a.tree, b.tree);
    }
}
