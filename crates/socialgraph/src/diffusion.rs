//! Probabilistic recruitment diffusion.
//!
//! The paper's §7-A tree construction is deterministic: every user refers
//! *all* of its un-joined neighbors. Real referral cascades are leakier —
//! an invitation reaches a neighbor only with some probability, and users
//! keep inviting over multiple rounds until the platform's threshold `N` is
//! met (or the cascade dies out). This module models that process so
//! experiments can check that RIT's results are not an artifact of the
//! full-diffusion assumption:
//!
//! * seeds join directly (children of the platform), like the paper;
//! * in each round, every member invites each un-joined neighbor
//!   independently with probability `invite_prob`; simultaneous invitations
//!   tie-break to the smallest-index inviter (same rule as
//!   [`crate::spanning`]);
//! * the cascade stops when `target` users joined, when nobody new joined
//!   for a round, or after `max_rounds`.

use rand::Rng;
use rit_tree::{IncentiveTree, NodeId};

use crate::SocialGraph;

/// Parameters of a recruitment cascade.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiffusionConfig {
    /// Per-neighbor, per-round invitation success probability.
    pub invite_prob: f64,
    /// Stop once this many users joined (`None` = run to exhaustion).
    pub target: Option<usize>,
    /// Hard cap on rounds.
    pub max_rounds: u32,
}

impl Default for DiffusionConfig {
    fn default() -> Self {
        Self {
            invite_prob: 0.5,
            target: None,
            max_rounds: 64,
        }
    }
}

/// Result of a cascade: the tree over the *joined* users plus the mapping
/// from tree user indices back to graph node ids.
#[derive(Clone, Debug)]
pub struct DiffusionOutcome {
    /// The incentive tree over joined users (user `j` of the tree is graph
    /// node `joined[j]`).
    pub tree: IncentiveTree,
    /// Graph node of each tree user, in join order.
    pub joined: Vec<u32>,
    /// Rounds the cascade ran.
    pub rounds: u32,
}

const UNJOINED: u32 = u32::MAX;

/// A checkpointable recruitment cascade.
///
/// A cascade with a membership `target` is a strict prefix of the same
/// cascade run to a larger target: the RNG draws are consumed in a
/// deterministic iteration order, so stopping at `target` and resuming
/// later replays *exactly* the draws a from-scratch run would make. The
/// state therefore records not just the joined set and frontier but the
/// in-round position (which inviter, which neighbor) where the previous
/// [`DiffusionState::extend`] call stopped, so an extension to a larger
/// target costs O(new joins) rather than O(total cascade).
///
/// [`simulate`] is a thin wrapper: `new` + one `extend` + `into_outcome`.
/// Extending a state with the *same RNG* it was grown with is bit-identical
/// (joined order, tree, reported rounds) to a from-scratch [`simulate`] at
/// the larger target — pinned by the `incremental` proptests.
#[derive(Clone, Debug)]
pub struct DiffusionState {
    /// Tree parent of each *graph* node (0 = platform, else tree node id).
    parent_of: Vec<u32>,
    /// Graph node -> tree node id (valid when joined).
    tree_id: Vec<u32>,
    /// Graph node of each member, in join order.
    joined: Vec<u32>,
    /// Members still inviting this round.
    frontier: Vec<u32>,
    /// Joins of the in-progress round (unsorted until the round completes).
    next: Vec<u32>,
    /// Resume position: index into `frontier`.
    cursor_inviter: usize,
    /// Resume position: index into the current inviter's neighbor list.
    cursor_neighbor: usize,
    /// Completed rounds.
    rounds: u32,
}

impl DiffusionState {
    /// Starts a cascade over a graph with `num_nodes` nodes, seeded at
    /// `seeds` (graph node ids, deduplicated, all joining the platform
    /// directly in round 0).
    ///
    /// # Panics
    ///
    /// Panics if a seed is out of range.
    #[must_use]
    pub fn new(graph: &SocialGraph, seeds: &[usize]) -> Self {
        let n = graph.num_nodes();
        let mut parent_of = vec![UNJOINED; n];
        let mut tree_id = vec![0u32; n];
        let mut joined: Vec<u32> = Vec::new();
        let mut frontier: Vec<u32> = Vec::new();
        for &s in seeds {
            assert!(s < n, "seed {s} out of range");
            if parent_of[s] == UNJOINED {
                parent_of[s] = 0;
                joined.push(s as u32);
                tree_id[s] = joined.len() as u32;
                frontier.push(s as u32);
            }
        }
        frontier.sort_unstable();
        Self {
            parent_of,
            tree_id,
            joined,
            frontier,
            next: Vec::new(),
            cursor_inviter: 0,
            cursor_neighbor: 0,
            rounds: 0,
        }
    }

    /// Whether the state sits at a round boundary (no round in progress).
    fn at_round_start(&self) -> bool {
        self.cursor_inviter == 0 && self.cursor_neighbor == 0 && self.next.is_empty()
    }

    /// Runs the cascade (from wherever the previous `extend` stopped) until
    /// `config.target` is met, the cumulative round cap is hit, or the
    /// cascade dies out. Returns the number of *new* joins.
    ///
    /// `rng` must be the same stream the state was grown with for the
    /// resume to match a from-scratch run; `config.max_rounds` counts
    /// cumulatively over the state's whole life.
    ///
    /// # Panics
    ///
    /// Panics if `invite_prob` is outside `[0, 1]` or `graph` does not have
    /// the node count the state was created with.
    pub fn extend<R: Rng + ?Sized>(
        &mut self,
        graph: &SocialGraph,
        config: &DiffusionConfig,
        rng: &mut R,
    ) -> usize {
        assert!(
            (0.0..=1.0).contains(&config.invite_prob),
            "invite_prob must be a probability"
        );
        assert_eq!(
            graph.num_nodes(),
            self.parent_of.len(),
            "graph changed size under the cascade"
        );
        let before = self.joined.len();
        loop {
            if config.target.is_some_and(|t| self.joined.len() >= t) {
                // Mid-round this leaves the cursors in place, so a later
                // extension resumes exactly where the draw stream stopped.
                break;
            }
            if self.at_round_start()
                && (self.frontier.is_empty() || self.rounds >= config.max_rounds)
            {
                break;
            }
            // Run (the rest of) the current round.
            'round: while self.cursor_inviter < self.frontier.len() {
                let inviter = self.frontier[self.cursor_inviter];
                let neighbors = graph.neighbors(inviter as usize);
                while self.cursor_neighbor < neighbors.len() {
                    let nb = neighbors[self.cursor_neighbor];
                    self.cursor_neighbor += 1;
                    if self.parent_of[nb as usize] != UNJOINED {
                        continue;
                    }
                    if rng.gen_bool(config.invite_prob) {
                        self.parent_of[nb as usize] = self.tree_id[inviter as usize];
                        self.joined.push(nb);
                        self.tree_id[nb as usize] = self.joined.len() as u32;
                        self.next.push(nb);
                        if config.target == Some(self.joined.len()) {
                            break 'round;
                        }
                    }
                }
                if self.cursor_neighbor >= neighbors.len() {
                    self.cursor_inviter += 1;
                    self.cursor_neighbor = 0;
                }
            }
            if self.cursor_inviter >= self.frontier.len() {
                // Round complete: promote this round's joins to the frontier.
                self.next.sort_unstable();
                std::mem::swap(&mut self.frontier, &mut self.next);
                self.next.clear();
                self.cursor_inviter = 0;
                self.cursor_neighbor = 0;
                self.rounds += 1;
            }
        }
        self.joined.len() - before
    }

    /// Graph node of each member, in join order.
    #[must_use]
    pub fn joined(&self) -> &[u32] {
        &self.joined
    }

    /// Number of members so far.
    #[must_use]
    pub fn num_joined(&self) -> usize {
        self.joined.len()
    }

    /// Rounds the cascade has run, counting an in-progress round the way
    /// [`simulate`] reports it (a round cut short by the target counts).
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds + u32::from(!self.at_round_start())
    }

    /// Materializes the incentive tree over the current membership
    /// (tree node `j + 1` is graph node `joined[j]`). O(members).
    ///
    /// # Panics
    ///
    /// Never: cascade parents are acyclic by construction.
    #[must_use]
    pub fn tree(&self) -> IncentiveTree {
        let parents: Vec<NodeId> = self
            .joined
            .iter()
            .map(|&g| NodeId::new(self.parent_of[g as usize]))
            .collect();
        IncentiveTree::from_parents(&parents).expect("cascade parents are acyclic")
    }

    /// Snapshots the state as a [`DiffusionOutcome`].
    #[must_use]
    pub fn outcome(&self) -> DiffusionOutcome {
        DiffusionOutcome {
            tree: self.tree(),
            joined: self.joined.clone(),
            rounds: self.rounds(),
        }
    }

    /// Consumes the state into a [`DiffusionOutcome`] without copying the
    /// join list.
    #[must_use]
    pub fn into_outcome(self) -> DiffusionOutcome {
        let tree = self.tree();
        let rounds = self.rounds();
        DiffusionOutcome {
            tree,
            joined: self.joined,
            rounds,
        }
    }
}

/// Runs a recruitment cascade over `graph`, seeded at `seeds` (graph node
/// ids, deduplicated, all joining the platform directly in round 0).
///
/// # Panics
///
/// Panics if `invite_prob` is outside `[0, 1]` or a seed is out of range.
pub fn simulate<R: Rng + ?Sized>(
    graph: &SocialGraph,
    seeds: &[usize],
    config: &DiffusionConfig,
    rng: &mut R,
) -> DiffusionOutcome {
    let mut state = DiffusionState::new(graph, seeds);
    state.extend(graph, config, rng);
    state.into_outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn line(n: usize) -> SocialGraph {
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        SocialGraph::from_edges(n, &edges)
    }

    #[test]
    fn full_probability_reproduces_spanning_bfs() {
        let g = line(6);
        let mut rng = SmallRng::seed_from_u64(1);
        let out = simulate(
            &g,
            &[0],
            &DiffusionConfig {
                invite_prob: 1.0,
                ..DiffusionConfig::default()
            },
            &mut rng,
        );
        assert_eq!(out.tree.num_users(), 6);
        assert_eq!(out.joined, vec![0, 1, 2, 3, 4, 5]);
        // Line graph from one end: a path of depth 6.
        assert_eq!(out.tree.depth(NodeId::from_user_index(5)), 6);
        assert_eq!(out.rounds, 6); // five growth rounds + the final empty one
    }

    #[test]
    fn zero_probability_joins_only_seeds() {
        let g = line(5);
        let mut rng = SmallRng::seed_from_u64(2);
        let out = simulate(
            &g,
            &[2, 4],
            &DiffusionConfig {
                invite_prob: 0.0,
                ..DiffusionConfig::default()
            },
            &mut rng,
        );
        assert_eq!(out.tree.num_users(), 2);
        for u in out.tree.user_nodes() {
            assert_eq!(out.tree.depth(u), 1);
        }
    }

    #[test]
    fn target_caps_membership() {
        let g = crate::generators::barabasi_albert(500, 2, &mut SmallRng::seed_from_u64(3));
        let mut rng = SmallRng::seed_from_u64(4);
        let out = simulate(
            &g,
            &[0],
            &DiffusionConfig {
                invite_prob: 0.8,
                target: Some(100),
                max_rounds: 64,
            },
            &mut rng,
        );
        assert_eq!(out.tree.num_users(), 100);
        assert_eq!(out.joined.len(), 100);
    }

    #[test]
    fn parents_are_graph_neighbors() {
        let g = crate::generators::erdos_renyi(300, 0.02, &mut SmallRng::seed_from_u64(5));
        let mut rng = SmallRng::seed_from_u64(6);
        let out = simulate(&g, &[0, 1, 2], &DiffusionConfig::default(), &mut rng);
        for (j, &gnode) in out.joined.iter().enumerate() {
            let p = out.tree.parent(NodeId::from_user_index(j)).unwrap();
            if let Some(pj) = p.user_index() {
                let pg = out.joined[pj] as usize;
                assert!(g.has_edge(gnode as usize, pg));
            }
        }
    }

    #[test]
    fn duplicate_seeds_deduplicated() {
        let g = line(3);
        let mut rng = SmallRng::seed_from_u64(7);
        let out = simulate(
            &g,
            &[1, 1, 1],
            &DiffusionConfig {
                invite_prob: 0.0,
                ..DiffusionConfig::default()
            },
            &mut rng,
        );
        assert_eq!(out.tree.num_users(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = crate::generators::barabasi_albert(200, 2, &mut SmallRng::seed_from_u64(8));
        let a = simulate(
            &g,
            &[0],
            &DiffusionConfig::default(),
            &mut SmallRng::seed_from_u64(9),
        );
        let b = simulate(
            &g,
            &[0],
            &DiffusionConfig::default(),
            &mut SmallRng::seed_from_u64(9),
        );
        assert_eq!(a.joined, b.joined);
        assert_eq!(a.tree, b.tree);
    }
}
