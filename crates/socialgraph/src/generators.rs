//! Random social-graph generators.
//!
//! These substitute for the paper's proprietary Twitter trace (see
//! DESIGN.md). All generators are deterministic given the RNG and are
//! efficient at the paper's scale (n up to 80,000) and beyond: each builds
//! through [`GraphBuilder`]'s flat half-edge chains straight into CSR, with
//! no intermediate per-node `Vec<Vec<_>>` adjacency.

use rand::Rng;

use crate::{GraphBuilder, SocialGraph};

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`.
///
/// Uses the Batagelj–Brandes geometric-skipping construction, so the running
/// time is `O(n + |E|)` rather than `O(n²)` — essential at n = 80,000.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
#[must_use]
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> SocialGraph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    if p <= 0.0 || n < 2 {
        return SocialGraph::new(n);
    }
    let pairs = n * (n - 1) / 2;
    if p >= 1.0 {
        let mut g = GraphBuilder::with_edge_capacity(n, pairs);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        return g.build();
    }
    let mut g = GraphBuilder::with_edge_capacity(n, (p * pairs as f64).ceil() as usize);
    // Walk the strictly-upper-triangular pair sequence, skipping a
    // Geometric(p)-distributed gap between successive edges.
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    while (v as usize) < n {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        w += 1 + (r.ln() / log_q).floor() as i64;
        while w >= v && (v as usize) < n {
            w -= v;
            v += 1;
        }
        if (v as usize) < n {
            g.add_edge(w as usize, v as usize);
        }
    }
    g.build()
}

/// Barabási–Albert preferential attachment: starts from a clique of
/// `m + 1` seed nodes; each subsequent node attaches `m` edges to existing
/// nodes chosen with probability proportional to their degree.
///
/// Produces the heavy-tailed degree distribution characteristic of follower
/// graphs, making it the default incentive-tree substrate in the simulation
/// harness.
///
/// # Panics
///
/// Panics if `m == 0` or `n < m + 1`.
#[must_use]
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> SocialGraph {
    assert!(m > 0, "attachment count m must be positive");
    assert!(n > m, "need at least m + 1 = {} nodes, got {n}", m + 1);
    let num_edges = m * (m + 1) / 2 + (n - m - 1) * m;
    let mut g = GraphBuilder::with_edge_capacity(n, num_edges);
    // `targets` holds one entry per edge endpoint; sampling uniformly from it
    // realizes degree-proportional selection.
    let mut targets: Vec<u32> = Vec::with_capacity(2 * num_edges);
    for u in 0..=m {
        for v in (u + 1)..=m {
            g.add_edge(u, v);
            targets.push(u as u32);
            targets.push(v as u32);
        }
    }
    let mut picks: Vec<u32> = Vec::with_capacity(m);
    for u in (m + 1)..n {
        picks.clear();
        while picks.len() < m {
            let t = targets[rng.gen_range(0..targets.len())];
            if !picks.contains(&t) {
                picks.push(t);
            }
        }
        for &v in &picks {
            g.add_edge(u, v as usize);
            targets.push(u as u32);
            targets.push(v);
        }
    }
    g.build()
}

/// Watts–Strogatz small world: a ring lattice where each node connects to
/// its `k / 2` nearest neighbors on each side, then each lattice edge is
/// rewired with probability `beta` to a uniformly random endpoint.
///
/// # Panics
///
/// Panics if `k` is odd, `k == 0`, `k >= n`, or `beta` is outside `[0, 1]`.
#[must_use]
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> SocialGraph {
    assert!(
        k > 0 && k.is_multiple_of(2),
        "k must be positive and even, got {k}"
    );
    assert!(k < n, "k = {k} must be smaller than n = {n}");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let mut g = GraphBuilder::with_edge_capacity(n, n * k / 2);
    for u in 0..n {
        for d in 1..=(k / 2) {
            let v = (u + d) % n;
            if rng.gen_bool(beta) {
                // Rewire: pick a random endpoint, avoiding loops/duplicates.
                let mut attempts = 0;
                loop {
                    let w = rng.gen_range(0..n);
                    if w != u && !g.has_edge(u, w) {
                        g.add_edge(u, w);
                        break;
                    }
                    attempts += 1;
                    if attempts > 32 {
                        g.add_edge(u, v); // fall back to the lattice edge
                        break;
                    }
                }
            } else {
                g.add_edge(u, v);
            }
        }
    }
    g.build()
}

/// Copying model: each new node picks a random *prototype* among existing
/// nodes; with probability `alpha` it copies each prototype edge, and it
/// always links to the prototype itself. Another classic scale-free process,
/// useful to check that experiment results are not an artifact of the BA
/// construction.
///
/// # Panics
///
/// Panics if `n == 0` or `alpha` is outside `[0, 1]`.
#[must_use]
pub fn copying_model<R: Rng + ?Sized>(n: usize, alpha: f64, rng: &mut R) -> SocialGraph {
    assert!(n > 0, "need at least one node");
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    let mut g = GraphBuilder::new(n);
    for u in 1..n {
        let proto = rng.gen_range(0..u);
        let copied: Vec<u32> = g.neighbors(proto).filter(|_| rng.gen_bool(alpha)).collect();
        g.add_edge(u, proto);
        for v in copied {
            g.add_edge(u, v as usize);
        }
    }
    g.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let n = 2000;
        let p = 0.005;
        let g = erdos_renyi(n, p, &mut SmallRng::seed_from_u64(1));
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "expected ≈{expected}, got {got}"
        );
    }

    #[test]
    fn erdos_renyi_extremes() {
        let g0 = erdos_renyi(50, 0.0, &mut SmallRng::seed_from_u64(1));
        assert_eq!(g0.num_edges(), 0);
        let g1 = erdos_renyi(10, 1.0, &mut SmallRng::seed_from_u64(1));
        assert_eq!(g1.num_edges(), 45);
        let tiny = erdos_renyi(1, 0.5, &mut SmallRng::seed_from_u64(1));
        assert_eq!(tiny.num_edges(), 0);
    }

    #[test]
    fn barabasi_albert_shape() {
        let n = 3000;
        let m = 2;
        let g = barabasi_albert(n, m, &mut SmallRng::seed_from_u64(2));
        assert_eq!(g.num_nodes(), n);
        // Seed clique has C(3,2) = 3 edges; each later node adds exactly m.
        assert_eq!(g.num_edges(), 3 + (n - m - 1) * m);
        // Heavy tail: the max degree should far exceed the mean (~2m).
        let max_deg = (0..n).map(|u| g.degree(u)).max().unwrap();
        assert!(max_deg > 30, "expected a hub, max degree {max_deg}");
        // Minimum degree is m.
        assert!((0..n).all(|u| g.degree(u) >= m));
        // BA graphs are connected by construction.
        assert_eq!(g.components().len(), 1);
    }

    #[test]
    fn watts_strogatz_degree_regular_at_beta_zero() {
        let g = watts_strogatz(100, 4, 0.0, &mut SmallRng::seed_from_u64(3));
        for u in 0..100 {
            assert_eq!(g.degree(u), 4);
        }
        assert_eq!(g.components().len(), 1);
    }

    #[test]
    fn watts_strogatz_rewiring_keeps_edge_count_close() {
        let g = watts_strogatz(500, 6, 0.3, &mut SmallRng::seed_from_u64(4));
        // Each node initiates k/2 = 3 edges; rewiring may occasionally merge
        // into an existing edge, so allow slack below 1500.
        assert!(g.num_edges() > 1400 && g.num_edges() <= 1500);
    }

    #[test]
    fn copying_model_is_connected() {
        let g = copying_model(1000, 0.5, &mut SmallRng::seed_from_u64(5));
        assert_eq!(g.components().len(), 1);
        assert!(g.num_edges() >= 999); // at least the prototype links
    }

    #[test]
    fn generators_are_deterministic() {
        let a = barabasi_albert(200, 2, &mut SmallRng::seed_from_u64(7));
        let b = barabasi_albert(200, 2, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = erdos_renyi(200, 0.05, &mut SmallRng::seed_from_u64(7));
        let d = erdos_renyi(200, 0.05, &mut SmallRng::seed_from_u64(7));
        assert_eq!(c, d);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn erdos_renyi_validates_p() {
        let _ = erdos_renyi(10, 1.5, &mut SmallRng::seed_from_u64(1));
    }

    #[test]
    #[should_panic(expected = "m + 1")]
    fn barabasi_albert_validates_n() {
        let _ = barabasi_albert(2, 2, &mut SmallRng::seed_from_u64(1));
    }
}
