//! Undirected social-graph representation (compressed sparse row).

use std::fmt;

/// Sentinel terminating a half-edge chain in [`GraphBuilder`].
const NONE: u32 = u32::MAX;

/// An undirected social graph over users `0 ‥ n−1`, stored in CSR
/// (compressed sparse row) form.
///
/// Edges model social influence: an edge `{i, j}` means either user may
/// solicit the other into the incentive tree. The graph is immutable once
/// built — construct it with [`GraphBuilder`] (or the [`SocialGraph::from_edges`]
/// convenience), which silently ignores parallel edges and self-loops,
/// keeping the graph simple.
///
/// The adjacency of every node occupies one contiguous slice of a single
/// flat array (`neighbors[offsets[u] ‥ offsets[u+1]]`), so a whole-graph
/// traversal is two linear scans with no per-node pointer chasing, and the
/// memory footprint is exactly `4·(n + 1) + 8·num_edges` bytes of payload.
/// Per-node neighbor order is edge-insertion order, identical to the order
/// the previous `Vec<Vec<u32>>` layout produced — downstream consumers
/// (diffusion, spanning forests) draw randomness while iterating
/// [`neighbors`](SocialGraph::neighbors), so this ordering is part of the
/// determinism contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SocialGraph {
    /// CSR row offsets; `offsets.len() == num_nodes + 1`.
    offsets: Vec<u32>,
    /// Flat neighbor array; two entries per undirected edge.
    neighbors: Vec<u32>,
    num_edges: usize,
}

impl Default for SocialGraph {
    fn default() -> Self {
        Self::new(0)
    }
}

impl SocialGraph {
    /// Creates an edgeless graph with `n` users.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            num_edges: 0,
        }
    }

    /// Builds a graph with `n` users from an edge list. Self-loops and
    /// duplicate edges are silently ignored.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of users.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected, deduplicated) edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether the edge `{u, v}` exists.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        // Query the smaller adjacency slice.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).contains(&(b as u32))
    }

    /// The neighbors of `u` in edge-insertion order.
    #[must_use]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// The degree of `u`.
    #[must_use]
    pub fn degree(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// The connected components of the graph.
    ///
    /// Caller-visible order is fixed and documented: within each component
    /// the node indices are listed in ascending order, and the components
    /// themselves are ordered by their smallest member (equivalently, by
    /// first discovery in an ascending scan over node indices). Callers may
    /// rely on this ordering; it is pinned by tests.
    #[must_use]
    pub fn components(&self) -> Vec<Vec<u32>> {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        let mut stack = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            seen[start] = true;
            stack.push(start as u32);
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &w in self.neighbors(v as usize) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// Degree histogram: `hist[d]` = number of users with degree `d`.
    ///
    /// Two O(N) passes over the CSR offsets — no per-node temporaries.
    #[must_use]
    pub fn degree_histogram(&self) -> Vec<usize> {
        let n = self.num_nodes();
        let mut max_deg = 0;
        for u in 0..n {
            max_deg = max_deg.max(self.degree(u));
        }
        let mut hist = vec![0usize; max_deg + 1];
        for u in 0..n {
            hist[self.degree(u)] += 1;
        }
        hist
    }
}

impl fmt::Display for SocialGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "social graph: {} nodes, {} edges",
            self.num_nodes(),
            self.num_edges()
        )
    }
}

/// Incremental builder producing a CSR [`SocialGraph`].
///
/// Half-edges are appended to per-node linked chains (O(1) per insertion,
/// two flat arrays — no per-node `Vec`), then [`build`](GraphBuilder::build)
/// prefix-sums the degrees into CSR offsets and walks each chain in
/// insertion order to fill the flat neighbor array. The resulting per-node
/// neighbor order is exactly the order edges were added, matching what
/// `Vec::push`-based adjacency would have produced.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    /// First half-edge of each node's chain, or [`NONE`].
    head: Vec<u32>,
    /// Last half-edge of each node's chain, or [`NONE`].
    tail: Vec<u32>,
    /// Current degree of each node.
    degree: Vec<u32>,
    /// Per half-edge: the neighbor it points at.
    target: Vec<u32>,
    /// Per half-edge: the next half-edge in the same chain, or [`NONE`].
    next: Vec<u32>,
    num_edges: usize,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` users and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            head: vec![NONE; n],
            tail: vec![NONE; n],
            degree: vec![0; n],
            target: Vec::new(),
            next: Vec::new(),
            num_edges: 0,
        }
    }

    /// Starts a builder for `n` users with half-edge storage preallocated
    /// for `edges` edges.
    #[must_use]
    pub fn with_edge_capacity(n: usize, edges: usize) -> Self {
        let mut b = Self::new(n);
        b.target.reserve(2 * edges);
        b.next.reserve(2 * edges);
        b
    }

    /// Number of users.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.head.len()
    }

    /// Number of (undirected, deduplicated) edges added so far.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Current degree of `u`.
    #[must_use]
    pub fn degree(&self, u: usize) -> usize {
        self.degree[u] as usize
    }

    /// The neighbors of `u` added so far, in insertion order.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = u32> + '_ {
        ChainIter {
            builder: self,
            edge: self.head[u],
        }
    }

    /// Whether the edge `{u, v}` has been added.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        // Scan the shorter chain.
        let (a, b) = if self.degree[u] <= self.degree[v] {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).any(|w| w == b as u32)
    }

    /// Adds the undirected edge `{u, v}`. Self-loops and duplicates are
    /// ignored. Returns whether a new edge was inserted.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        let n = self.num_nodes();
        assert!(u < n && v < n, "edge ({u}, {v}) out of range for {n} nodes");
        if u == v || self.has_edge(u, v) {
            return false;
        }
        self.push_half_edge(u, v as u32);
        self.push_half_edge(v, u as u32);
        self.num_edges += 1;
        true
    }

    fn push_half_edge(&mut self, from: usize, to: u32) {
        let e = u32::try_from(self.target.len()).expect("more than u32::MAX half-edges");
        self.target.push(to);
        self.next.push(NONE);
        if self.tail[from] == NONE {
            self.head[from] = e;
        } else {
            self.next[self.tail[from] as usize] = e;
        }
        self.tail[from] = e;
        self.degree[from] += 1;
    }

    /// Finalizes the builder into an immutable CSR [`SocialGraph`].
    #[must_use]
    pub fn build(self) -> SocialGraph {
        let n = self.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc: u32 = 0;
        offsets.push(0);
        for &d in &self.degree {
            acc += d;
            offsets.push(acc);
        }
        let mut neighbors = vec![0u32; acc as usize];
        for (&start, &head) in offsets.iter().zip(&self.head) {
            let mut w = start as usize;
            let mut e = head;
            while e != NONE {
                neighbors[w] = self.target[e as usize];
                w += 1;
                e = self.next[e as usize];
            }
        }
        SocialGraph {
            offsets,
            neighbors,
            num_edges: self.num_edges,
        }
    }
}

/// Iterator over one node's half-edge chain in insertion order.
struct ChainIter<'a> {
    builder: &'a GraphBuilder,
    edge: u32,
}

impl Iterator for ChainIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.edge == NONE {
            return None;
        }
        let e = self.edge as usize;
        self.edge = self.builder.next[e];
        Some(self.builder.target[e])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_dedups_and_ignores_loops() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(0, 1));
        assert!(!b.add_edge(1, 0));
        assert!(!b.add_edge(2, 2));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn neighbors_and_degree() {
        let g = SocialGraph::from_edges(4, &[(0, 1), (0, 2)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn neighbor_order_is_insertion_order() {
        // Interleave endpoints so chains are non-contiguous in the
        // half-edge arrays; the CSR fill must still follow chain order.
        let g = SocialGraph::from_edges(5, &[(2, 4), (0, 3), (2, 1), (2, 0), (4, 0)]);
        assert_eq!(g.neighbors(2), &[4, 1, 0]);
        assert_eq!(g.neighbors(0), &[3, 2, 4]);
        assert_eq!(g.neighbors(4), &[2, 0]);
    }

    #[test]
    fn builder_neighbors_match_built_graph() {
        let edges = [(0, 1), (1, 2), (3, 1), (0, 4), (4, 1)];
        let mut b = GraphBuilder::new(5);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let chains: Vec<Vec<u32>> = (0..5).map(|u| b.neighbors(u).collect()).collect();
        assert!(b.has_edge(3, 1) && !b.has_edge(3, 0));
        let g = b.build();
        for (u, chain) in chains.iter().enumerate() {
            assert_eq!(g.neighbors(u), chain.as_slice());
        }
    }

    #[test]
    fn components_split_correctly() {
        let g = SocialGraph::from_edges(5, &[(0, 1), (3, 4)]);
        let comps = g.components();
        assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn degree_histogram_counts() {
        // Star: one degree-3 hub, three degree-1 leaves.
        let g = SocialGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree_histogram(), vec![0, 3, 0, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = SocialGraph::new(0);
        assert_eq!(g.num_nodes(), 0);
        assert!(g.components().is_empty());
        assert_eq!(g.degree_histogram(), vec![0]);
        assert_eq!(g, SocialGraph::default());
        assert_eq!(g, GraphBuilder::new(0).build());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_bounds_checked() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }
}
