//! Undirected social-graph representation.

use std::fmt;

/// An undirected social graph over users `0 ‥ n−1`.
///
/// Edges model social influence: an edge `{i, j}` means either user may
/// solicit the other into the incentive tree. Parallel edges and self-loops
/// are silently ignored on insertion, keeping the graph simple.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SocialGraph {
    adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl SocialGraph {
    /// Creates an edgeless graph with `n` users.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Number of users.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected, deduplicated) edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds the undirected edge `{u, v}`. Self-loops and duplicates are
    /// ignored. Returns whether a new edge was inserted.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        let n = self.num_nodes();
        assert!(u < n && v < n, "edge ({u}, {v}) out of range for {n} nodes");
        if u == v || self.adj[u].contains(&(v as u32)) {
            return false;
        }
        self.adj[u].push(v as u32);
        self.adj[v].push(u as u32);
        self.num_edges += 1;
        true
    }

    /// Whether the edge `{u, v}` exists.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        // Query the smaller adjacency list.
        let (a, b) = if self.adj[u].len() <= self.adj[v].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a].contains(&(b as u32))
    }

    /// The neighbors of `u` in insertion order.
    #[must_use]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.adj[u]
    }

    /// The degree of `u`.
    #[must_use]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// The connected components, each listed in ascending node order;
    /// components are ordered by their smallest member.
    #[must_use]
    pub fn components(&self) -> Vec<Vec<u32>> {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        let mut stack = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            seen[start] = true;
            stack.push(start as u32);
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &w in &self.adj[v as usize] {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// Degree histogram: `hist[d]` = number of users with degree `d`.
    #[must_use]
    pub fn degree_histogram(&self) -> Vec<usize> {
        let max_deg = self.adj.iter().map(Vec::len).max().unwrap_or(0);
        let mut hist = vec![0usize; max_deg + 1];
        for a in &self.adj {
            hist[a.len()] += 1;
        }
        hist
    }
}

impl fmt::Display for SocialGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "social graph: {} nodes, {} edges",
            self.num_nodes(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_dedups_and_ignores_loops() {
        let mut g = SocialGraph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert!(!g.add_edge(2, 2));
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn neighbors_and_degree() {
        let mut g = SocialGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn components_split_correctly() {
        let mut g = SocialGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(3, 4);
        let comps = g.components();
        assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn degree_histogram_counts() {
        let mut g = SocialGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        // Star: one degree-3 hub, three degree-1 leaves.
        assert_eq!(g.degree_histogram(), vec![0, 3, 0, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = SocialGraph::new(0);
        assert_eq!(g.num_nodes(), 0);
        assert!(g.components().is_empty());
        assert_eq!(g.degree_histogram(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_bounds_checked() {
        let mut g = SocialGraph::new(2);
        g.add_edge(0, 5);
    }
}
