//! Social-network substrate for the RIT evaluation.
//!
//! The paper (§7-A) grows its incentive tree from a Twitter follower graph
//! of ~80,000 users \[21\]: a spanning forest is generated where *"each user
//! refers all of its un-joined neighbors into the incentive tree"*, the
//! platform is the root, the forest roots attach to the platform, and
//! simultaneous invitations tie-break to the smallest inviter index.
//!
//! The original trace is proprietary, so this crate substitutes synthetic
//! generators with the same structural role (see DESIGN.md §2):
//!
//! * [`generators::barabasi_albert`] — preferential attachment; reproduces
//!   the heavy-tailed degree distribution of follower graphs and is the
//!   default in the simulation harness;
//! * [`generators::erdos_renyi`] — the homogeneous G(n, p) baseline;
//! * [`generators::watts_strogatz`] — high clustering, small world;
//! * [`generators::copying_model`] — an alternative scale-free process.
//!
//! [`spanning::spanning_forest_tree`] implements the paper's tree
//! construction verbatim: multi-source BFS per connected component (seeded
//! at each component's smallest-index user), parent = smallest-index
//! inviter, forest roots as children of the platform.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use rit_socialgraph::{generators, spanning};
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let graph = generators::barabasi_albert(1000, 2, &mut rng);
//! let tree = spanning::spanning_forest_tree(&graph);
//! assert_eq!(tree.num_users(), 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diffusion;
pub mod generators;
mod graph;
pub mod spanning;
pub mod stats;

pub use graph::{GraphBuilder, SocialGraph};
