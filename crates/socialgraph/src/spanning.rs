//! The paper's spanning-forest incentive-tree construction (§7-A).
//!
//! *"We generate a spanning forest of the social network where each user
//! refers all of its un-joined neighbors into the incentive tree. We set the
//! platform as the root of the incentive tree and attach all roots of the
//! spanning forest as the children of the root. If multiple invitations
//! arrive at a user at the same time, we break the ties by choosing the one
//! with the smallest index among the inviters as the parent."*
//!
//! Concretely this is a round-based (breadth-first) diffusion: within each
//! connected component the smallest-index user joins first (as a child of
//! the platform); in every subsequent round, each just-joined user invites
//! all of its un-joined neighbors simultaneously, and a user receiving
//! several simultaneous invitations picks the smallest-index inviter.

use rit_tree::{IncentiveTree, NodeId};

use crate::SocialGraph;

/// Builds the incentive tree for `graph` by the paper's spanning-forest
/// rule. User `i` of the graph becomes tree node `i + 1`
/// ([`NodeId::from_user_index`]); isolated users attach directly to the
/// platform (they "join at the very beginning" of their own one-user
/// component).
#[must_use]
pub fn spanning_forest_tree(graph: &SocialGraph) -> IncentiveTree {
    let n = graph.num_nodes();
    // parent_of[i]: tree parent of user i; u32::MAX = not joined yet.
    const UNJOINED: u32 = u32::MAX;
    let mut parent_of = vec![UNJOINED; n];
    let mut frontier: Vec<u32> = Vec::new();
    let mut next: Vec<u32> = Vec::new();

    for seed in 0..n {
        if parent_of[seed] != UNJOINED {
            continue;
        }
        // `seed` is the smallest unjoined index, hence the smallest index of
        // its component: it starts the component as a child of the platform.
        parent_of[seed] = 0; // 0 encodes the platform root
        frontier.clear();
        frontier.push(seed as u32);
        while !frontier.is_empty() {
            next.clear();
            // Ascending inviter order ⇒ first assignment wins the tie-break.
            for &inviter in frontier.iter() {
                for &nb in graph.neighbors(inviter as usize) {
                    if parent_of[nb as usize] == UNJOINED {
                        parent_of[nb as usize] = inviter + 1; // tree node id of inviter
                        next.push(nb);
                    }
                }
            }
            next.sort_unstable();
            std::mem::swap(&mut frontier, &mut next);
        }
    }

    let parents: Vec<NodeId> = parent_of.into_iter().map(NodeId::new).collect();
    IncentiveTree::from_parents(&parents).expect("BFS forest parents are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn graph_from_edges(n: usize, edges: &[(usize, usize)]) -> SocialGraph {
        SocialGraph::from_edges(n, edges)
    }

    #[test]
    fn line_graph_becomes_path() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let t = spanning_forest_tree(&g);
        assert_eq!(t.parent(NodeId::from_user_index(0)), Some(NodeId::ROOT));
        assert_eq!(
            t.parent(NodeId::from_user_index(1)),
            Some(NodeId::from_user_index(0))
        );
        assert_eq!(t.depth(NodeId::from_user_index(3)), 4);
    }

    #[test]
    fn tie_break_prefers_smallest_inviter() {
        // 0 and 1 both neighbor 2; both are at depth 1 in round 1 of the
        // component seeded at 0… but 1 is only reached via 2. Build a diamond:
        // 0–1, 0–2, 1–3, 2–3: round 1 joins {1, 2}; both invite 3
        // simultaneously; 3 must pick inviter 1.
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let t = spanning_forest_tree(&g);
        assert_eq!(
            t.parent(NodeId::from_user_index(3)),
            Some(NodeId::from_user_index(1))
        );
    }

    #[test]
    fn components_each_get_a_seed() {
        let g = graph_from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let t = spanning_forest_tree(&g);
        // Seeds 0, 2, 4 attach to the platform.
        for seed in [0usize, 2, 4] {
            assert_eq!(t.parent(NodeId::from_user_index(seed)), Some(NodeId::ROOT));
        }
        for follower in [1usize, 3, 5] {
            assert_eq!(t.depth(NodeId::from_user_index(follower)), 2);
        }
        assert_eq!(t.children(NodeId::ROOT).len(), 3);
    }

    #[test]
    fn isolated_users_join_directly() {
        let g = SocialGraph::new(5);
        let t = spanning_forest_tree(&g);
        assert_eq!(t.children(NodeId::ROOT).len(), 5);
    }

    #[test]
    fn empty_graph_gives_platform_only() {
        let t = spanning_forest_tree(&SocialGraph::new(0));
        assert_eq!(t.num_users(), 0);
    }

    #[test]
    fn depths_are_bfs_distances() {
        // Star around node 3 plus chain 0–1–2 entering at 2–3.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (3, 5)]);
        let t = spanning_forest_tree(&g);
        let depths: Vec<u32> = (0..6)
            .map(|u| t.depth(NodeId::from_user_index(u)))
            .collect();
        assert_eq!(depths, vec![1, 2, 3, 4, 5, 5]);
    }

    #[test]
    fn parent_is_always_a_neighbor_or_platform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = crate::generators::barabasi_albert(500, 2, &mut rng);
        let t = spanning_forest_tree(&g);
        for u in 0..500 {
            let p = t.parent(NodeId::from_user_index(u)).unwrap();
            match p.user_index() {
                None => {} // platform seed
                Some(pu) => assert!(
                    g.has_edge(u, pu),
                    "tree parent {pu} of {u} is not a graph neighbor"
                ),
            }
        }
    }

    #[test]
    fn connected_graph_single_seed() {
        let mut rng = SmallRng::seed_from_u64(13);
        let g = crate::generators::barabasi_albert(300, 2, &mut rng);
        let t = spanning_forest_tree(&g);
        assert_eq!(t.children(NodeId::ROOT).len(), 1);
        assert_eq!(t.children(NodeId::ROOT)[0], NodeId::from_user_index(0));
    }

    #[test]
    fn spanning_tree_covers_all_users() {
        let mut rng = SmallRng::seed_from_u64(17);
        let g = crate::generators::erdos_renyi(400, 0.01, &mut rng);
        let t = spanning_forest_tree(&g);
        assert_eq!(t.num_users(), 400);
        // Every user has a well-defined positive depth.
        for u in t.user_nodes() {
            assert!(t.depth(u) >= 1);
        }
    }
}
