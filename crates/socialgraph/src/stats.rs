//! Descriptive statistics of social graphs.
//!
//! The incentive-tree shape (and hence the solicitation-reward mass) is
//! driven by the underlying graph's degree structure; experiments report
//! these statistics so runs on different generators are comparable.

use crate::SocialGraph;

/// Summary statistics of a social graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of users.
    pub num_nodes: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Mean degree `2|E|/n` (0 for an empty graph).
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of connected components.
    pub num_components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
    /// Global clustering coefficient: `3·triangles / open triads`
    /// (0 when the graph has no path of length 2).
    pub clustering: f64,
}

impl GraphStats {
    /// Computes all statistics. Triangle counting is `O(Σ deg²)` — fine for
    /// the sparse graphs used here (BA with m = 2 has mean degree 4).
    #[must_use]
    pub fn compute(graph: &SocialGraph) -> Self {
        let n = graph.num_nodes();
        let num_edges = graph.num_edges();
        let max_degree = (0..n).map(|u| graph.degree(u)).max().unwrap_or(0);
        let components = graph.components();
        let largest_component = components.iter().map(Vec::len).max().unwrap_or(0);

        // Count closed and open triads.
        let mut triangles3 = 0u64; // 3 × number of triangles (each counted per vertex)
        let mut triads = 0u64; // paths of length 2 centered anywhere
        for u in 0..n {
            let neigh = graph.neighbors(u);
            let d = neigh.len() as u64;
            triads += d.saturating_sub(1) * d / 2;
            for (i, &a) in neigh.iter().enumerate() {
                for &b in &neigh[i + 1..] {
                    if graph.has_edge(a as usize, b as usize) {
                        triangles3 += 1;
                    }
                }
            }
        }
        Self {
            num_nodes: n,
            num_edges,
            mean_degree: if n == 0 {
                0.0
            } else {
                2.0 * num_edges as f64 / n as f64
            },
            max_degree,
            num_components: components.len(),
            largest_component,
            clustering: if triads == 0 {
                0.0
            } else {
                triangles3 as f64 / triads as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn graph_from_edges(n: usize, edges: &[(usize, usize)]) -> SocialGraph {
        SocialGraph::from_edges(n, edges)
    }

    #[test]
    fn triangle_is_fully_clustered() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.clustering, 1.0);
        assert_eq!(s.num_components, 1);
        assert_eq!(s.mean_degree, 2.0);
    }

    #[test]
    fn star_has_zero_clustering() {
        let g = graph_from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.clustering, 0.0);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.largest_component, 4);
    }

    #[test]
    fn empty_graph_statistics() {
        let s = GraphStats::compute(&SocialGraph::new(0));
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.clustering, 0.0);
        assert_eq!(s.largest_component, 0);
    }

    #[test]
    fn disconnected_components_counted() {
        let g = graph_from_edges(5, &[(0, 1), (2, 3)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_components, 3);
        assert_eq!(s.largest_component, 2);
    }

    #[test]
    fn watts_strogatz_clusters_more_than_erdos_renyi() {
        // The defining small-world property: at equal density, the rewired
        // ring lattice retains far higher clustering than G(n, p).
        let mut rng = SmallRng::seed_from_u64(1);
        let ws = crate::generators::watts_strogatz(800, 6, 0.1, &mut rng);
        let er = crate::generators::erdos_renyi(800, 6.0 / 799.0, &mut rng);
        let cw = GraphStats::compute(&ws).clustering;
        let ce = GraphStats::compute(&er).clustering;
        assert!(cw > 3.0 * ce, "WS {cw:.3} should dwarf ER {ce:.3}");
    }

    #[test]
    fn barabasi_albert_has_hub_and_one_component() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = crate::generators::barabasi_albert(2000, 2, &mut rng);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_components, 1);
        assert!((s.mean_degree - 4.0).abs() < 0.1);
        assert!(s.max_degree as f64 > 5.0 * s.mean_degree);
    }
}
