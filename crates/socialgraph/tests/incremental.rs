//! Property-based tests pinning the resumability contract of
//! [`DiffusionState`]: a cascade stopped at one membership target and
//! extended later with the same RNG stream is bit-identical — join order,
//! tree, reported rounds — to a from-scratch cascade run straight to the
//! larger target.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_socialgraph::diffusion::{self, DiffusionConfig, DiffusionState};
use rit_socialgraph::{generators, SocialGraph};

fn arb_graph() -> impl Strategy<Value = (SocialGraph, u64)> {
    (20usize..120, 1usize..4, any::<u64>()).prop_map(|(n, m, seed)| {
        let g = generators::barabasi_albert(n, m, &mut SmallRng::seed_from_u64(seed));
        (g, seed)
    })
}

fn config(invite_prob: f64, target: usize) -> DiffusionConfig {
    DiffusionConfig {
        invite_prob,
        target: Some(target),
        max_rounds: 64,
    }
}

proptest! {
    /// extend(T1); extend(T2) == simulate(T2), for T1 ≤ T2.
    #[test]
    fn two_step_extension_matches_from_scratch(
        (g, _) in arb_graph(),
        rng_seed in any::<u64>(),
        invite_prob in 0.05f64..1.0,
        t1_frac in 0.0f64..1.0,
        t2_frac in 0.0f64..1.0,
    ) {
        let n = g.num_nodes();
        let t2 = 1 + (t2_frac * (n - 1) as f64) as usize;
        let t1 = 1 + (t1_frac * (t2 - 1) as f64) as usize; // 1 ≤ t1 ≤ t2

        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let mut state = DiffusionState::new(&g, &[0]);
        state.extend(&g, &config(invite_prob, t1), &mut rng);
        prop_assert!(state.num_joined() <= t1.max(1));
        state.extend(&g, &config(invite_prob, t2), &mut rng);

        let fresh = diffusion::simulate(
            &g,
            &[0],
            &config(invite_prob, t2),
            &mut SmallRng::seed_from_u64(rng_seed),
        );
        prop_assert_eq!(state.joined(), &fresh.joined[..]);
        prop_assert_eq!(state.rounds(), fresh.rounds);
        prop_assert_eq!(state.tree(), fresh.tree);
    }

    /// A chain of many small extensions equals one from-scratch run at the
    /// final target, and intermediate snapshots are prefixes.
    #[test]
    fn many_step_chain_matches_from_scratch(
        (g, _) in arb_graph(),
        rng_seed in any::<u64>(),
        invite_prob in 0.05f64..1.0,
        steps in 2usize..8,
    ) {
        let n = g.num_nodes();
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let mut state = DiffusionState::new(&g, &[0]);
        let mut prev_joined: Vec<u32> = state.joined().to_vec();
        for s in 1..=steps {
            let target = 1 + s * (n - 1) / steps;
            state.extend(&g, &config(invite_prob, target), &mut rng);
            // Strict growth: the previous membership is an exact prefix.
            prop_assert_eq!(&state.joined()[..prev_joined.len()], &prev_joined[..]);
            prev_joined = state.joined().to_vec();
        }

        let fresh = diffusion::simulate(
            &g,
            &[0],
            &config(invite_prob, n),
            &mut SmallRng::seed_from_u64(rng_seed),
        );
        prop_assert_eq!(state.joined(), &fresh.joined[..]);
        prop_assert_eq!(state.rounds(), fresh.rounds);
        prop_assert_eq!(state.tree(), fresh.tree);
    }

    /// Extending a cascade that already died out (or met its cumulative
    /// round cap) is a no-op, never a divergence.
    #[test]
    fn extension_past_exhaustion_is_a_noop(
        (g, _) in arb_graph(),
        rng_seed in any::<u64>(),
        invite_prob in 0.05f64..1.0,
    ) {
        let n = g.num_nodes();
        let mut rng = SmallRng::seed_from_u64(rng_seed);
        let mut state = DiffusionState::new(&g, &[0]);
        state.extend(&g, &config(invite_prob, n), &mut rng);
        let joined = state.joined().to_vec();
        let rounds = state.rounds();
        let grew = state.extend(&g, &config(invite_prob, n), &mut rng);
        prop_assert_eq!(grew, 0);
        prop_assert_eq!(state.joined(), &joined[..]);
        prop_assert_eq!(state.rounds(), rounds);
    }
}

#[test]
fn outcome_snapshot_matches_into_outcome() {
    let g = generators::barabasi_albert(200, 2, &mut SmallRng::seed_from_u64(5));
    let mut rng = SmallRng::seed_from_u64(6);
    let mut state = DiffusionState::new(&g, &[0]);
    state.extend(&g, &config(0.5, 80), &mut rng);
    let snap = state.outcome();
    let owned = state.into_outcome();
    assert_eq!(snap.joined, owned.joined);
    assert_eq!(snap.rounds, owned.rounds);
    assert_eq!(snap.tree, owned.tree);
}
