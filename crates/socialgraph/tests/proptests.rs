//! Property-based tests of graph generation, spanning-forest construction,
//! and recruitment diffusion.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_socialgraph::diffusion::{self, DiffusionConfig};
use rit_socialgraph::{generators, spanning, GraphBuilder, SocialGraph};
use rit_tree::NodeId;

fn arb_graph() -> impl Strategy<Value = SocialGraph> {
    (
        2usize..80,
        prop::collection::vec((any::<u16>(), any::<u16>()), 0..200),
    )
        .prop_map(|(n, edges)| {
            let mut g = GraphBuilder::new(n);
            for (a, b) in edges {
                g.add_edge(a as usize % n, b as usize % n);
            }
            g.build()
        })
}

proptest! {
    #[test]
    fn spanning_forest_covers_all_users_with_neighbor_parents(g in arb_graph()) {
        let tree = spanning::spanning_forest_tree(&g);
        prop_assert_eq!(tree.num_users(), g.num_nodes());
        for u in 0..g.num_nodes() {
            let node = NodeId::from_user_index(u);
            let p = tree.parent(node).unwrap();
            match p.user_index() {
                None => {} // component seed
                Some(pu) => prop_assert!(g.has_edge(u, pu)),
            }
        }
        // Number of platform children equals the number of components.
        prop_assert_eq!(
            tree.children(NodeId::ROOT).len(),
            g.components().len()
        );
    }

    #[test]
    fn spanning_depths_are_bfs_distances(g in arb_graph()) {
        // Depth of u = 1 + BFS distance from its component's seed.
        let tree = spanning::spanning_forest_tree(&g);
        for comp in g.components() {
            let seed = comp[0] as usize;
            // BFS distances within the component.
            let mut dist = vec![usize::MAX; g.num_nodes()];
            dist[seed] = 0;
            let mut queue = std::collections::VecDeque::from([seed]);
            while let Some(v) = queue.pop_front() {
                for &w in g.neighbors(v) {
                    if dist[w as usize] == usize::MAX {
                        dist[w as usize] = dist[v] + 1;
                        queue.push_back(w as usize);
                    }
                }
            }
            for &u in &comp {
                let d = tree.depth(NodeId::from_user_index(u as usize)) as usize;
                prop_assert_eq!(d, dist[u as usize] + 1);
            }
        }
    }

    #[test]
    fn diffusion_joins_are_connected_and_bounded(
        g in arb_graph(),
        prob_sel in 0u8..=100,
        seed in any::<u64>(),
        target_sel in any::<u16>(),
    ) {
        let target = 1 + target_sel as usize % g.num_nodes();
        let out = diffusion::simulate(
            &g,
            &[0],
            &DiffusionConfig {
                invite_prob: f64::from(prob_sel) / 100.0,
                target: Some(target),
                max_rounds: 64,
            },
            &mut SmallRng::seed_from_u64(seed),
        );
        prop_assert!(out.tree.num_users() <= target.max(1));
        prop_assert_eq!(out.tree.num_users(), out.joined.len());
        // Every non-seed member's tree parent is a graph neighbor.
        for (j, &gnode) in out.joined.iter().enumerate() {
            let p = out.tree.parent(NodeId::from_user_index(j)).unwrap();
            if let Some(pj) = p.user_index() {
                prop_assert!(g.has_edge(gnode as usize, out.joined[pj] as usize));
            } else {
                prop_assert_eq!(gnode, 0, "only the seed hangs off the platform");
            }
        }
        // No duplicates.
        let mut sorted = out.joined.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), out.joined.len());
    }

    #[test]
    fn diffusion_prefix_stability(
        seed in any::<u64>(),
        small in 2usize..40,
        extra in 1usize..40,
    ) {
        // The campaign layer relies on this: growing the target replays the
        // same join prefix.
        let g = generators::barabasi_albert(120, 2, &mut SmallRng::seed_from_u64(1));
        let run = |target: usize| {
            diffusion::simulate(
                &g,
                &[0],
                &DiffusionConfig {
                    invite_prob: 0.6,
                    target: Some(target),
                    max_rounds: 64,
                },
                &mut SmallRng::seed_from_u64(seed),
            )
        };
        let a = run(small);
        let b = run(small + extra);
        prop_assert!(b.joined.len() >= a.joined.len());
        prop_assert_eq!(&b.joined[..a.joined.len()], &a.joined[..]);
        // Tree parents agree on the shared prefix.
        for j in 0..a.joined.len() {
            let node = NodeId::from_user_index(j);
            prop_assert_eq!(a.tree.parent(node), b.tree.parent(node));
        }
    }

    #[test]
    fn generators_produce_simple_graphs(n in 4usize..120, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for g in [
            generators::barabasi_albert(n, 2, &mut rng),
            generators::erdos_renyi(n, 0.1, &mut rng),
            generators::copying_model(n, 0.4, &mut rng),
        ] {
            // Simplicity: no self-loops, no duplicate edges (checked via the
            // degree sum identity against the deduplicated count).
            let degree_sum: usize = (0..n).map(|u| g.degree(u)).sum();
            prop_assert_eq!(degree_sum, 2 * g.num_edges());
            for u in 0..n {
                prop_assert!(!g.has_edge(u, u));
                let mut nb: Vec<u32> = g.neighbors(u).to_vec();
                let before = nb.len();
                nb.sort_unstable();
                nb.dedup();
                prop_assert_eq!(nb.len(), before, "duplicate neighbor at {}", u);
            }
        }
    }
}
