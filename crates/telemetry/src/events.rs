//! Structured JSONL event export.
//!
//! Events are single-line JSON objects built with [`JsonObject`] — a small
//! hand-rolled writer (the workspace takes no serialization dependency) —
//! and appended to a [`JsonlSink`], a mutex-guarded buffered file. Sink
//! writes are deliberately infallible at the call site: telemetry must
//! never fail an experiment, so I/O errors surface only from
//! [`JsonlSink::flush`].

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::Mutex;

/// Escapes `s` for inclusion in a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental single-line JSON object builder.
///
/// ```
/// use rit_telemetry::JsonObject;
///
/// let line = JsonObject::new("counter")
///     .str_field("name", "auction.rounds")
///     .u64_field("value", 17)
///     .finish();
/// assert_eq!(line, r#"{"event":"counter","name":"auction.rounds","value":17}"#);
/// ```
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an object whose first field is `"event": kind`.
    #[must_use]
    pub fn new(kind: &str) -> Self {
        Self {
            buf: format!("{{\"event\":\"{}\"", escape_json(kind)),
        }
    }

    /// Appends a string field.
    #[must_use]
    pub fn str_field(mut self, key: &str, value: &str) -> Self {
        let _ = write!(
            self.buf,
            ",\"{}\":\"{}\"",
            escape_json(key),
            escape_json(value)
        );
        self
    }

    /// Appends an unsigned integer field.
    #[must_use]
    pub fn u64_field(mut self, key: &str, value: u64) -> Self {
        let _ = write!(self.buf, ",\"{}\":{value}", escape_json(key));
        self
    }

    /// Appends a float field (`null` when not finite).
    #[must_use]
    pub fn f64_field(mut self, key: &str, value: f64) -> Self {
        if value.is_finite() {
            let _ = write!(self.buf, ",\"{}\":{value}", escape_json(key));
        } else {
            let _ = write!(self.buf, ",\"{}\":null", escape_json(key));
        }
        self
    }

    /// Appends a boolean field.
    #[must_use]
    pub fn bool_field(mut self, key: &str, value: bool) -> Self {
        let _ = write!(self.buf, ",\"{}\":{value}", escape_json(key));
        self
    }

    /// Closes the object and returns the line (no trailing newline).
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A buffered JSONL file sink.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the sink file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// Appends one event line. Write errors are swallowed (telemetry never
    /// fails the run); they resurface from [`JsonlSink::flush`].
    pub fn emit(&self, line: &str) {
        let mut w = self.writer.lock().expect("telemetry sink poisoned");
        let _ = writeln!(w, "{line}");
    }

    /// Flushes buffered lines to disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().expect("telemetry sink poisoned").flush()
    }
}

impl Drop for JsonlSink {
    /// Last-chance flush: binaries that exit without calling
    /// [`JsonlSink::flush`] (early return, error path) would otherwise lose
    /// the buffered tail silently — `BufWriter`'s own drop flushes but
    /// swallows errors. Failures here can only be reported, not propagated,
    /// so they go to stderr.
    fn drop(&mut self) {
        let writer = match self.writer.get_mut() {
            Ok(writer) => writer,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Err(e) = writer.flush() {
            eprintln!("warning: telemetry sink lost buffered events on drop: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn escaping_covers_every_control_char_and_carriage_return() {
        assert_eq!(escape_json("a\rb"), "a\\rb");
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let escaped = escape_json(&c.to_string());
            // Every C0 control character must leave as an escape sequence,
            // never as a raw byte (raw controls are invalid in JSON strings).
            assert!(escaped.starts_with('\\'), "U+{code:04X} not escaped");
            assert!(escaped.is_ascii());
        }
        assert_eq!(escape_json("\u{0}"), "\\u0000");
        assert_eq!(escape_json("\u{1f}"), "\\u001f");
        // 0x20 (space) and above pass through untouched.
        assert_eq!(escape_json(" ~"), " ~");
    }

    #[test]
    fn escaping_passes_multi_byte_utf8_through_untouched() {
        // 2-, 3-, and 4-byte sequences: é, λ/→, 😀.
        assert_eq!(escape_json("é λ→😀"), "é λ→😀");
        // Mixed with escapes on both sides.
        assert_eq!(escape_json("π=\"3\"\n😀"), "π=\\\"3\\\"\\n😀");
        //  (DEL) is not a C0 control; JSON allows it raw.
        assert_eq!(escape_json("\u{7f}"), "\u{7f}");
    }

    #[test]
    fn sink_flushes_on_drop() {
        let dir = std::env::temp_dir().join("rit_telemetry_drop_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dropped.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.emit(r#"{"event":"tail"}"#);
            // No explicit flush: the Drop impl must persist the buffer.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"event\":\"tail\"}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn object_builder_renders_all_field_kinds() {
        let line = JsonObject::new("demo")
            .str_field("s", "x\"y")
            .u64_field("u", 7)
            .f64_field("f", 1.5)
            .f64_field("bad", f64::NAN)
            .bool_field("b", true)
            .finish();
        assert_eq!(
            line,
            r#"{"event":"demo","s":"x\"y","u":7,"f":1.5,"bad":null,"b":true}"#
        );
    }

    #[test]
    fn sink_writes_lines() {
        let dir = std::env::temp_dir().join("rit_telemetry_events_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(r#"{"event":"a"}"#);
        sink.emit(r#"{"event":"b"}"#);
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"event\":\"a\"}\n{\"event\":\"b\"}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
