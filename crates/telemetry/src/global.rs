//! The process-global telemetry instance.
//!
//! Deep call sites — the substrate cache, `parallel_map` workers, the
//! campaign epoch loop — cannot reasonably thread a handle through every
//! signature, so telemetry follows the global-recorder pattern: a binary
//! [`install`]s one [`Telemetry`] at startup, instrumented code asks
//! [`active`] (a single `OnceLock` load) and does nothing when none is
//! installed. The uninstrumented path is therefore exactly the
//! pre-telemetry code path.

use std::io;
use std::path::Path;
use std::sync::OnceLock;

use crate::events::{JsonObject, JsonlSink};
use crate::manifest::RunManifest;
use crate::registry::{CounterId, GaugeId, HistogramId, MetricsRegistry, RegistrySnapshot};
use crate::span::{self, SpanGuard, SpanKind};

/// Handles to the workspace's standard metrics, pre-registered by
/// [`Telemetry::new`] so every hot path records through a `Copy` id with
/// no name lookup.
#[derive(Clone, Copy, Debug)]
pub struct StandardMetrics {
    /// `auction.types` — task-type round loops entered.
    pub auction_types: CounterId,
    /// `auction.rounds` — CRA rounds executed.
    pub auction_rounds: CounterId,
    /// `auction.winners` — winners applied across all rounds.
    pub auction_winners: CounterId,
    /// `auction.consensus` — sum of consensus-rounded counts `n_s`.
    pub auction_consensus: CounterId,
    /// `substrate.generations` — scenarios actually generated.
    pub substrate_generations: CounterId,
    /// `substrate.hits` — substrate cache hits.
    pub substrate_hits: CounterId,
    /// `substrate.misses` — substrate cache misses.
    pub substrate_misses: CounterId,
    /// `worker.items` — parallel-map items executed.
    pub worker_items: CounterId,
    /// `worker.busy_ns` — cumulative worker busy time.
    pub worker_busy_ns: CounterId,
    /// `campaign.epochs` — campaign epochs executed.
    pub campaign_epochs: CounterId,
    /// `attack.replications` — paired attack replications observed.
    pub attack_replications: CounterId,
    /// `grid.cells` — experiment-grid cells completed (all replications
    /// done).
    pub grid_cells: CounterId,
    /// `grid.cell_failures` — grid items quarantined after exhausting
    /// their retries (one per failed cell × replication).
    pub grid_cell_failures: CounterId,
    /// `grid.cell_retries` — grid item re-runs after a caught panic.
    pub grid_cell_retries: CounterId,
    /// `worker.threads` — resolved worker-thread count.
    pub worker_threads: GaugeId,
    /// `grid.straggler_micros` — wall time of the slowest grid cell so
    /// far (first item claimed → last item finished).
    pub grid_straggler_micros: GaugeId,
    /// `auction.round_winners` — winners per round.
    pub round_winners: HistogramId,
    /// `auction.clearing_price_milli` — clearing price per winning round,
    /// in 1/1000 currency units.
    pub clearing_price_milli: HistogramId,
    /// `auction.rounds_per_type` — rounds per task type.
    pub rounds_per_type: HistogramId,
    /// `auction.stall_rounds_per_type` — zero-winner rounds per task type.
    pub stall_rounds_per_type: HistogramId,
    /// `worker.item_micros` — wall time per parallel-map item.
    pub worker_item_micros: HistogramId,
    /// `campaign.epoch_micros` — wall time per campaign epoch.
    pub campaign_epoch_micros: HistogramId,
    /// `attack.abs_gain_milli` — |deviation gain| per replication, in
    /// 1/1000 utility units.
    pub attack_abs_gain_milli: HistogramId,
    /// `grid.cell_micros` — wall time per completed grid cell.
    pub grid_cell_micros: HistogramId,
    /// `span.*_micros` — wall time per closed span, one histogram per
    /// [`SpanKind`], indexed by `SpanKind::index` ([`SpanKind::ALL`] order).
    pub span_micros: [HistogramId; SpanKind::COUNT],
}

impl StandardMetrics {
    fn register(registry: &mut MetricsRegistry) -> Self {
        Self {
            auction_types: registry.register_counter("auction.types"),
            auction_rounds: registry.register_counter("auction.rounds"),
            auction_winners: registry.register_counter("auction.winners"),
            auction_consensus: registry.register_counter("auction.consensus"),
            substrate_generations: registry.register_counter("substrate.generations"),
            substrate_hits: registry.register_counter("substrate.hits"),
            substrate_misses: registry.register_counter("substrate.misses"),
            worker_items: registry.register_counter("worker.items"),
            worker_busy_ns: registry.register_counter("worker.busy_ns"),
            campaign_epochs: registry.register_counter("campaign.epochs"),
            attack_replications: registry.register_counter("attack.replications"),
            grid_cells: registry.register_counter("grid.cells"),
            grid_cell_failures: registry.register_counter("grid.cell_failures"),
            grid_cell_retries: registry.register_counter("grid.cell_retries"),
            worker_threads: registry.register_gauge("worker.threads"),
            grid_straggler_micros: registry.register_gauge("grid.straggler_micros"),
            round_winners: registry.register_histogram("auction.round_winners"),
            clearing_price_milli: registry.register_histogram("auction.clearing_price_milli"),
            rounds_per_type: registry.register_histogram("auction.rounds_per_type"),
            stall_rounds_per_type: registry.register_histogram("auction.stall_rounds_per_type"),
            worker_item_micros: registry.register_histogram("worker.item_micros"),
            campaign_epoch_micros: registry.register_histogram("campaign.epoch_micros"),
            attack_abs_gain_milli: registry.register_histogram("attack.abs_gain_milli"),
            grid_cell_micros: registry.register_histogram("grid.cell_micros"),
            span_micros: SpanKind::ALL.map(|kind| registry.register_histogram(kind.metric_name())),
        }
    }
}

/// One invocation's telemetry: registry + standard metric handles +
/// manifest + optional JSONL sink.
#[derive(Debug)]
pub struct Telemetry {
    registry: MetricsRegistry,
    metrics: StandardMetrics,
    manifest: RunManifest,
    sink: Option<JsonlSink>,
}

impl Telemetry {
    /// An in-memory telemetry instance (registry only, no event sink).
    /// `bench_sim` uses this to embed histogram summaries in its report
    /// even when no JSONL path was requested.
    #[must_use]
    pub fn new(manifest: RunManifest) -> Self {
        let mut registry = MetricsRegistry::new();
        let metrics = StandardMetrics::register(&mut registry);
        Self {
            registry,
            metrics,
            manifest,
            sink: None,
        }
    }

    /// A telemetry instance streaming events to a JSONL file. The manifest
    /// line is emitted immediately, so it is always the file's first line.
    ///
    /// # Errors
    ///
    /// Propagates sink-creation errors.
    pub fn with_sink(manifest: RunManifest, path: &Path) -> io::Result<Self> {
        let mut t = Self::new(manifest);
        let sink = JsonlSink::create(path)?;
        sink.emit(&t.manifest.to_event());
        t.sink = Some(sink);
        Ok(t)
    }

    /// The metric registry.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The pre-registered standard metric handles.
    #[must_use]
    pub fn metrics(&self) -> &StandardMetrics {
        &self.metrics
    }

    /// The run manifest.
    #[must_use]
    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }

    /// Whether events are being streamed to a sink. Call sites that build
    /// event strings should gate on this: metric *recording* is
    /// allocation-free, event *rendering* is not.
    #[must_use]
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Adds `delta` to a counter.
    pub fn add(&self, id: CounterId, delta: u64) {
        self.registry.add(id, delta);
    }

    /// Records a value into a histogram.
    pub fn record(&self, id: HistogramId, value: u64) {
        self.registry.record(id, value);
    }

    /// Records a real value into a histogram in fixed-point `scale` units.
    pub fn record_scaled(&self, id: HistogramId, value: f64, scale: f64) {
        self.registry.record_scaled(id, value, scale);
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, id: GaugeId, value: f64) {
        self.registry.set_gauge(id, value);
    }

    /// Opens a timed span against this instance; dropping the guard records
    /// the elapsed wall time (and, with a sink, emits a `span` event). See
    /// [`crate::span()`] for the nesting model.
    pub fn start_span(&self, kind: SpanKind) -> SpanGuard<'_> {
        SpanGuard::start(self, kind)
    }

    /// Records a manually assembled span — for spans whose start and end
    /// are observed on different threads (e.g. grid cells, whose first item
    /// and last item may run on different workers). `start_us` is an offset
    /// against [`span::trace_now_us`]'s epoch. The span gets a fresh id and
    /// no parent link.
    pub fn record_span_at(&self, kind: SpanKind, start_us: u64, dur_us: u64) {
        self.record_span_at_status(kind, start_us, dur_us, None);
    }

    /// [`Telemetry::record_span_at`] with an explicit terminal status.
    /// `Some("failed")` marks the span as failed in the event stream (grid
    /// cells whose items were quarantined); `None` is the ordinary path.
    pub fn record_span_at_status(
        &self,
        kind: SpanKind,
        start_us: u64,
        dur_us: u64,
        status: Option<&str>,
    ) {
        self.record(self.metrics.span_micros[kind.index()], dur_us);
        if self.has_sink() {
            self.emit(&span::span_event(
                kind,
                span::next_span_id(),
                0,
                span::current_thread_id(),
                start_us,
                dur_us,
                status,
            ));
        }
    }

    /// Emits one already-rendered event line (no-op without a sink).
    pub fn emit(&self, line: &str) {
        if let Some(sink) = &self.sink {
            sink.emit(line);
        }
    }

    /// Snapshot of every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Emits a summary event per registered metric (counters, gauges, and
    /// histogram percentile summaries) and flushes the sink. No-op without
    /// a sink.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn flush(&self) -> io::Result<()> {
        let Some(sink) = &self.sink else {
            return Ok(());
        };
        let snap = self.registry.snapshot();
        for (name, value) in &snap.counters {
            sink.emit(
                &JsonObject::new("counter")
                    .str_field("name", name)
                    .u64_field("value", *value)
                    .finish(),
            );
        }
        for (name, value) in &snap.gauges {
            sink.emit(
                &JsonObject::new("gauge")
                    .str_field("name", name)
                    .f64_field("value", *value)
                    .finish(),
            );
        }
        for (name, s) in &snap.histograms {
            sink.emit(
                &JsonObject::new("histogram")
                    .str_field("name", name)
                    .u64_field("count", s.count)
                    .u64_field("min", s.min)
                    .u64_field("max", s.max)
                    .f64_field("mean", s.mean)
                    .u64_field("p50", s.p50)
                    .u64_field("p90", s.p90)
                    .u64_field("p99", s.p99)
                    .finish(),
            );
        }
        sink.flush()
    }
}

static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// Installs the process-global telemetry instance. At most one install
/// wins per process; on contention the rejected instance is handed back.
///
/// # Errors
///
/// Returns `Err(telemetry)` when a global instance is already installed.
// The large `Err` variant is the point: the rejected instance is handed
// back intact (registry contents included) rather than dropped, and
// install happens once per process, never on a hot path.
#[allow(clippy::result_large_err)]
pub fn install(telemetry: Telemetry) -> Result<&'static Telemetry, Telemetry> {
    match GLOBAL.set(telemetry) {
        Ok(()) => Ok(GLOBAL.get().expect("just installed")),
        Err(rejected) => Err(rejected),
    }
}

/// The installed global telemetry, if any. A single atomic load — cheap
/// enough for per-round call sites.
#[must_use]
pub fn active() -> Option<&'static Telemetry> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> RunManifest {
        RunManifest::new("test", "0.0.0", "unit", 1, 1)
    }

    #[test]
    fn standard_metrics_record_through_telemetry() {
        let t = Telemetry::new(manifest());
        let m = *t.metrics();
        t.add(m.auction_rounds, 5);
        t.record(m.round_winners, 3);
        t.record_scaled(m.clearing_price_milli, 1.234, 1000.0);
        t.set_gauge(m.worker_threads, 4.0);
        assert_eq!(t.registry().counter(m.auction_rounds), 5);
        assert_eq!(t.registry().histogram_summary(m.round_winners).count, 1);
        assert_eq!(
            t.registry().histogram_summary(m.clearing_price_milli).min,
            1234
        );
        assert_eq!(t.registry().gauge(m.worker_threads), 4.0);
        assert!(!t.has_sink());
        t.emit("ignored without sink");
        t.flush().unwrap();
    }

    #[test]
    fn sink_gets_manifest_first_then_flush_summaries() {
        let dir = std::env::temp_dir().join("rit_telemetry_global_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let t = Telemetry::with_sink(manifest(), &path).unwrap();
        let m = *t.metrics();
        t.add(m.auction_rounds, 2);
        t.record(m.round_winners, 9);
        t.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.contains("\"event\":\"manifest\""));
        assert!(text.contains("\"name\":\"auction.rounds\",\"value\":2"));
        assert!(text.contains("\"name\":\"auction.round_winners\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
