//! Log2-bucketed concurrent histograms.
//!
//! A [`Histogram`] holds 65 atomic buckets: bucket 0 is exactly `[0, 0]`
//! and bucket `b ≥ 1` covers `[2^(b-1), 2^b - 1]` — the bucket of a value
//! is one plus the position of its highest set bit, so recording is a
//! `leading_zeros` and two atomic adds: lock-free, allocation-free, and
//! safe to call from the auction engine's round loop and from concurrent
//! `parallel_map` workers.
//!
//! Percentile summaries resolve to the upper bound of the bucket holding
//! the requested rank, clamped into the observed `[min, max]`; that keeps
//! `p50 ≤ p90 ≤ p99` monotone and every reported percentile inside the
//! recorded range (pinned by the crate's proptests). Values are `u64`
//! ticks — record real-valued metrics in fixed-point units (microseconds,
//! milli-dollars) chosen so log2 resolution is adequate.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per power of two.
pub const NUM_BUCKETS: usize = 65;

/// A concurrent log2-bucketed histogram of `u64` values.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Mean of the recorded values (0.0 when empty).
    pub mean: f64,
    /// 50th percentile (bucket upper bound, clamped to `[min, max]`).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index holding `value`.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive `[low, high]` range of bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_BUCKETS`.
    #[must_use]
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < NUM_BUCKETS, "bucket index {index} out of range");
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            b => (1 << (b - 1), (1 << b) - 1),
        }
    }

    /// Records one value. Lock-free and allocation-free.
    ///
    /// The running `sum` (and hence the summary's `mean`) wraps if the
    /// total of all recorded values exceeds `u64::MAX`; callers record
    /// fixed-point ticks (microseconds, milli-dollars, counts) for which
    /// that total is unreachable in practice.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a non-negative real value in fixed-point `scale` units
    /// (e.g. `scale = 1e6` for seconds → microseconds). Non-finite and
    /// negative values are dropped rather than poisoning the histogram.
    pub fn record_scaled(&self, value: f64, scale: f64) {
        let ticks = value * scale;
        if ticks.is_finite() && ticks >= 0.0 {
            self.record(ticks.round() as u64);
        }
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Summarizes the current contents. Under concurrent recording the
    /// summary is a racy-but-consistent-enough snapshot (each field is
    /// individually atomic); summaries are intended for flush time, after
    /// the instrumented work has finished.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let counts: [u64; NUM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return HistogramSummary {
                count: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                p50: 0,
                p90: 0,
                p99: 0,
            };
        }
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            // 1-based rank of the requested quantile, at least 1.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return Self::bucket_bounds(i).1.clamp(min, max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            min,
            max,
            mean: self.sum.load(Ordering::Relaxed) as f64 / count as f64,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Histogram::bucket_bounds(2), (2, 3));
        assert_eq!(Histogram::bucket_bounds(64), (1 << 63, u64::MAX));
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!((s.min, s.max, s.p50, s.p90, s.p99), (0, 0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_value_summary_is_exact() {
        let h = Histogram::new();
        h.record(37);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max), (37, 37));
        // Clamping pins all percentiles of a single sample to the value.
        assert_eq!((s.p50, s.p90, s.p99), (37, 37, 37));
        assert_eq!(s.mean, 37.0);
    }

    #[test]
    fn single_bucket_summary_clamps_percentiles_to_observed_range() {
        // All mass in one bucket ([8, 15]): the bucket's upper bound (15)
        // exceeds the observed max (12), so clamping must pin every
        // percentile inside [min, max] rather than report bucket geometry.
        let h = Histogram::new();
        for v in [9u64, 10, 12] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!((s.min, s.max), (9, 12));
        for p in [s.p50, s.p90, s.p99] {
            assert!((9..=12).contains(&p), "percentile {p} outside [9, 12]");
        }
        assert!((s.mean - 31.0 / 3.0).abs() < 1e-12);

        // Same property in the degenerate zero bucket ([0, 0]).
        let z = Histogram::new();
        z.record(0);
        z.record(0);
        let s = z.summary();
        assert_eq!((s.count, s.min, s.max), (2, 0, 0));
        assert_eq!((s.p50, s.p90, s.p99), (0, 0, 0));
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentiles_track_mass() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket [8, 15]
        }
        for _ in 0..10 {
            h.record(1000); // bucket [512, 1023]
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!(s.p50 <= 15, "p50 {} should sit in the low bucket", s.p50);
        assert!(s.p99 >= 512, "p99 {} should sit in the high bucket", s.p99);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
    }

    #[test]
    fn scaled_recording_drops_junk() {
        let h = Histogram::new();
        h.record_scaled(1.5, 1000.0);
        h.record_scaled(f64::NAN, 1000.0);
        h.record_scaled(f64::INFINITY, 1000.0);
        h.record_scaled(-2.0, 1000.0);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 1500);
    }
}
