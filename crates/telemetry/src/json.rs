//! A minimal JSON reader — the parse side of the crate's hand-rolled
//! writer ([`crate::events::JsonObject`]).
//!
//! The workspace takes no serialization dependency, but the report tooling
//! must read back what the writers emit: `telemetry.jsonl` event lines and
//! the nested `BENCH_*.json` reports. [`JsonValue::parse`] is a small
//! recursive-descent parser covering exactly standard JSON (RFC 8259):
//! objects, arrays, strings with escapes (including `\uXXXX` and surrogate
//! pairs), numbers as `f64`, booleans, and `null`. Object member order is
//! preserved. It is a reader for trusted, self-produced artifacts — a depth
//! cap guards against pathological nesting, nothing more.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, member order preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses `text` as a single JSON value (surrounding whitespace
    /// allowed, nothing else may follow).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// Member `key` of an object value (`None` for non-objects and missing
    /// keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float (numbers only).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer (numbers with an exact `u64` form).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice (strings only).
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool (booleans only).
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements (arrays only).
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's members in document order (objects only).
    #[must_use]
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Nesting beyond this depth is rejected (self-produced artifacts nest a
/// handful of levels; this only guards the recursion).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            // The scanned run is a valid UTF-8 slice of the input: the
            // input is `&str` and the stop bytes are all ASCII.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let Some(b) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u', "expected low surrogate escape")?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let n: f64 = text.parse().map_err(|_| JsonError {
            message: "malformed number",
            offset: start,
        })?;
        if n.is_finite() {
            Ok(JsonValue::Number(n))
        } else {
            Err(JsonError {
                message: "number out of range",
                offset: start,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::JsonObject;

    #[test]
    fn round_trips_the_writer_output() {
        let line = JsonObject::new("span")
            .str_field("name", "grid.cell")
            .u64_field("id", 42)
            .f64_field("mean", 1.5)
            .f64_field("bad", f64::NAN)
            .bool_field("ok", true)
            .str_field("tricky", "a\"b\\c\nλ😀\u{1}")
            .finish();
        let v = JsonValue::parse(&line).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("name").unwrap().as_str(), Some("grid.cell"));
        assert_eq!(v.get("id").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("mean").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("bad"), Some(&JsonValue::Null));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("tricky").unwrap().as_str(), Some("a\"b\\c\nλ😀\u{1}"));
    }

    #[test]
    fn parses_nested_structures_and_preserves_order() {
        let v = JsonValue::parse(
            r#" {"arms":[{"name":"a","wall_s":[0.5,1.0e-3]},{"name":"b","wall_s":[]}],"n":-2} "#,
        )
        .unwrap();
        let arms = v.get("arms").unwrap().as_array().unwrap();
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].get("name").unwrap().as_str(), Some("a"));
        let wall = arms[0].get("wall_s").unwrap().as_array().unwrap();
        assert_eq!(wall[1].as_f64(), Some(1.0e-3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-2.0));
        assert_eq!(v.get("n").unwrap().as_u64(), None);
        let keys: Vec<&str> = v
            .entries()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["arms", "n"]);
    }

    #[test]
    fn resolves_unicode_escapes_including_surrogate_pairs() {
        let v = JsonValue::parse(r#""\u0041\u00e9\ud83d\ude00\u2192""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀→"));
    }

    #[test]
    fn rejects_malformed_input_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "tru",
            "1.2.3",
            "{\"a\":1} trailing",
            "\"\\ud800\"",
            "\"\\q\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = JsonValue::parse("[1, x]").unwrap_err();
        assert!(err.to_string().contains("at byte"));
    }

    #[test]
    fn depth_cap_rejects_pathological_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(JsonValue::parse(&deep).is_err());
        let fine = "[".repeat(50) + &"]".repeat(50);
        assert!(JsonValue::parse(&fine).is_ok());
    }
}
