//! Workspace-wide telemetry: metrics registry, structured event export, and
//! run manifests over the observer hooks.
//!
//! Every layer of the reproduction already exposes an observation seam —
//! [`rit_core::AuctionObserver`] for the auction engine,
//! [`rit_adversary::AttackObserver`] for attack suites, the
//! `SubstrateCache` hit counters, `parallel_map` workers, campaign epochs —
//! but each reported in its own ad-hoc way. This crate is the one layer
//! those seams feed:
//!
//! * [`MetricsRegistry`] — monotonic counters, gauges, and log2-bucketed
//!   [`Histogram`]s with p50/p90/p99 summaries. Registration happens once
//!   at setup (`&mut self`, returns `Copy` handles); recording is `&self`,
//!   lock-free, and allocation-free, so observers can run inside the
//!   allocation-free auction round loop.
//! * [`JsonlSink`] — a buffered structured-event stream, one JSON object
//!   per line (hand-rolled rendering, no serialization dependency).
//! * [`RunManifest`] — config hash ([`fnv1a64`]), seed, thread count, and
//!   package version, emitted as the first event of every instrumented
//!   invocation so runs are auditable and comparable.
//! * [`TelemetryObserver`] / [`TelemetryAttackObserver`] — adapters from
//!   the existing observer traits into the registry.
//! * a process-global [`Telemetry`] instance ([`install`] / [`active`])
//!   so deep call sites (cache, worker loop, campaign) can record without
//!   plumbing a handle through every signature. Not installing it keeps
//!   every hot path on the exact pre-telemetry code path.
//! * [`span()`] / [`SpanGuard`] — nested, thread-aware RAII wall-clock spans
//!   over the same seams (grid cells, substrate generation, auction
//!   phases, campaign epochs, workers), recorded as `span.*_micros`
//!   histograms and streamed as `span` events; [`chrome_trace`] exports the
//!   stream as Chrome `trace_event` JSON for Perfetto, and [`JsonValue`]
//!   reads the crate's own artifacts back (the `rit report` tooling).
//!
//! Observers never draw randomness, so enabling telemetry changes **no**
//! experimental result: the same RNG stream, the same allocation, the same
//! figures (pinned by the `ObserverChain` equivalence test and the sim
//! crate's end-to-end telemetry test).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
mod global;
pub mod histogram;
pub mod json;
pub mod manifest;
pub mod observer;
pub mod registry;
pub mod span;
pub mod stats;
pub mod trace;

pub use events::{JsonObject, JsonlSink};
pub use global::{active, install, StandardMetrics, Telemetry};
pub use histogram::{Histogram, HistogramSummary};
pub use json::{JsonError, JsonValue};
pub use manifest::{fnv1a64, RunManifest};
pub use observer::{TelemetryAttackObserver, TelemetryObserver};
pub use registry::{CounterId, GaugeId, HistogramId, MetricsRegistry, RegistrySnapshot};
pub use span::{span, SpanGuard, SpanKind};
pub use stats::MeanStd;
pub use trace::chrome_trace;

/// Environment variable naming a JSONL path for the global telemetry sink.
/// Binaries honor it as a fallback for their `--telemetry` flag.
pub const TELEMETRY_ENV: &str = "RIT_TELEMETRY";
