//! Run manifests: who ran what, with which configuration.
//!
//! Every instrumented invocation emits one `manifest` event before any
//! metric event: tool name, package version, a [`fnv1a64`] hash of the
//! experiment-defining configuration (deliberately *excluding* output
//! paths, so two runs of the same experiment hash identically regardless
//! of where their artifacts land — CI asserts this stability), the master
//! seed, and the resolved worker-thread count.

use crate::events::JsonObject;

/// 64-bit FNV-1a hash. Stable across platforms and releases — manifest
/// config hashes are comparable between runs and machines.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Identity of one experiment/bench invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunManifest {
    /// The invoking tool (`"experiments"`, `"bench_sim"`, `"rit"`, …).
    pub tool: String,
    /// The tool's package version (`CARGO_PKG_VERSION`).
    pub version: String,
    /// [`fnv1a64`] over the canonical configuration description.
    pub config_hash: u64,
    /// Master seed of the run.
    pub seed: u64,
    /// Resolved worker-thread count (after the `RIT_THREADS` override).
    pub threads: usize,
    /// Label of the mechanism under measurement (`"rit"`, `"naive"`,
    /// `"darpa"`). Recorded in the event but — like the seed — *not* part
    /// of the config hash; callers that want the mechanism to discriminate
    /// hashes put it in `config_desc`.
    pub mechanism: String,
    /// Label of the RNG mode (`"legacy"` single-stream or `"streams"`
    /// per-type). Like seed and thread count this describes *how* the run
    /// executed, not *what* it computed, so it is recorded but never hashed.
    pub rng_mode: String,
}

impl RunManifest {
    /// Builds a manifest, hashing `config_desc` (a canonical description
    /// of the experiment-defining configuration — no output paths). The
    /// mechanism label defaults to `"rit"`; see [`Self::with_mechanism`].
    #[must_use]
    pub fn new(tool: &str, version: &str, config_desc: &str, seed: u64, threads: usize) -> Self {
        Self {
            tool: tool.to_string(),
            version: version.to_string(),
            config_hash: fnv1a64(config_desc.as_bytes()),
            seed,
            threads,
            mechanism: "rit".to_string(),
            rng_mode: "legacy".to_string(),
        }
    }

    /// Sets the mechanism label carried by the manifest event.
    #[must_use]
    pub fn with_mechanism(mut self, label: &str) -> Self {
        self.mechanism = label.to_string();
        self
    }

    /// Sets the RNG-mode label carried by the manifest event.
    #[must_use]
    pub fn with_rng_mode(mut self, label: &str) -> Self {
        self.rng_mode = label.to_string();
        self
    }

    /// The manifest's `config_hash` as the zero-padded hex string used in
    /// every rendered artifact.
    #[must_use]
    pub fn config_hash_hex(&self) -> String {
        format!("{:016x}", self.config_hash)
    }

    /// Renders the manifest as its JSONL event line.
    #[must_use]
    pub fn to_event(&self) -> String {
        JsonObject::new("manifest")
            .str_field("tool", &self.tool)
            .str_field("version", &self.version)
            .str_field("config_hash", &self.config_hash_hex())
            .u64_field("seed", self.seed)
            .u64_field("threads", self.threads as u64)
            .str_field("mechanism", &self.mechanism)
            .str_field("rng_mode", &self.rng_mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_discriminating() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"config A"), fnv1a64(b"config B"));
        assert_eq!(fnv1a64(b"same"), fnv1a64(b"same"));
    }

    #[test]
    fn manifest_event_shape() {
        let m = RunManifest::new("experiments", "0.1.0", "scale=smoke runs=2", 2017, 4);
        let line = m.to_event();
        assert!(line.starts_with("{\"event\":\"manifest\""));
        assert!(line.contains("\"tool\":\"experiments\""));
        assert!(line.contains(&format!("\"config_hash\":\"{}\"", m.config_hash_hex())));
        assert!(line.contains("\"seed\":2017"));
        assert!(line.contains("\"threads\":4"));
        assert!(line.contains("\"mechanism\":\"rit\""));
        assert_eq!(m.config_hash_hex().len(), 16);
    }

    #[test]
    fn mechanism_label_is_recorded_but_not_hashed() {
        let rit = RunManifest::new("t", "v", "desc", 1, 2);
        let naive = RunManifest::new("t", "v", "desc", 1, 2).with_mechanism("naive");
        assert_eq!(rit.config_hash, naive.config_hash);
        assert!(naive.to_event().contains("\"mechanism\":\"naive\""));
    }

    #[test]
    fn rng_mode_label_is_recorded_but_not_hashed() {
        let legacy = RunManifest::new("t", "v", "desc", 1, 2);
        let streams = RunManifest::new("t", "v", "desc", 1, 2).with_rng_mode("streams");
        assert_eq!(legacy.config_hash, streams.config_hash);
        assert!(legacy.to_event().contains("\"rng_mode\":\"legacy\""));
        assert!(streams.to_event().contains("\"rng_mode\":\"streams\""));
    }

    #[test]
    fn hash_ignores_nothing_but_description() {
        let a = RunManifest::new("t", "v", "desc", 1, 2);
        let b = RunManifest::new("t", "v", "desc", 9, 8);
        // Seed/threads are recorded but do not enter the config hash.
        assert_eq!(a.config_hash, b.config_hash);
    }
}
