//! Adapters from the workspace's observer traits into the registry.
//!
//! [`TelemetryObserver`] implements [`rit_core::AuctionObserver`]: per
//! round it performs a handful of relaxed atomic operations against
//! pre-registered metrics and keeps two `u32`s of local state — no heap
//! allocation anywhere in the round loop (pinned by this crate's
//! counting-allocator test). It composes with a full
//! [`rit_core::TraceObserver`] through `rit_core`'s `ObserverChain`, and
//! since neither observer draws randomness, chaining changes no result.
//!
//! [`TelemetryAttackObserver`] implements
//! [`rit_adversary::AttackObserver`]: per-attack gain distributions as
//! [`MeanStd`] accumulators (allocated once at `suite_start`, mergeable
//! across workers) plus an `attack` summary event per attack.

use rit_adversary::{AttackObserver, GainReport, PairedOutcome};
use rit_core::trace::RoundTrace;
use rit_core::AuctionObserver;
use rit_model::TaskTypeId;

use crate::events::JsonObject;
use crate::global::Telemetry;
use crate::span::{SpanGuard, SpanKind};
use crate::stats::MeanStd;

/// Scale for recording currency/utility values in the log2 histograms.
const MILLI: f64 = 1000.0;

/// An [`AuctionObserver`] recording per-round statistics into a
/// [`Telemetry`] registry.
#[derive(Debug)]
pub struct TelemetryObserver<'t> {
    telemetry: &'t Telemetry,
    type_rounds: u32,
    type_stalls: u32,
    phase_span: Option<SpanGuard<'t>>,
}

impl<'t> TelemetryObserver<'t> {
    /// An observer recording into `telemetry`.
    #[must_use]
    pub fn new(telemetry: &'t Telemetry) -> Self {
        Self {
            telemetry,
            type_rounds: 0,
            type_stalls: 0,
            phase_span: None,
        }
    }
}

impl AuctionObserver for TelemetryObserver<'_> {
    fn phase_start(&mut self, _num_types: usize) {
        // `phase_start`/`phase_end` bracket the real (possibly parallel)
        // phase execution, so the span measures actual wall-clock even when
        // the per-type round events arrive as a post-hoc replay.
        self.phase_span = Some(self.telemetry.start_span(SpanKind::AuctionPhase));
    }

    fn phase_end(&mut self) {
        self.phase_span = None;
    }

    fn type_start(&mut self, _task_type: TaskTypeId, _tasks: u64, _budget: Option<u32>) {
        self.telemetry
            .add(self.telemetry.metrics().auction_types, 1);
        self.type_rounds = 0;
        self.type_stalls = 0;
    }

    fn round(&mut self, round: &RoundTrace) {
        let t = self.telemetry;
        let m = t.metrics();
        let winners = round.winners as u64;
        t.add(m.auction_rounds, 1);
        t.add(m.auction_winners, winners);
        t.add(m.auction_consensus, round.diagnostics.consensus_count);
        t.record(m.round_winners, winners);
        if round.winners > 0 {
            t.record_scaled(m.clearing_price_milli, round.clearing_price, MILLI);
        } else {
            self.type_stalls += 1;
        }
        self.type_rounds += 1;
    }

    fn type_end(&mut self) {
        let t = self.telemetry;
        let m = t.metrics();
        t.record(m.rounds_per_type, u64::from(self.type_rounds));
        t.record(m.stall_rounds_per_type, u64::from(self.type_stalls));
    }
}

/// An [`AttackObserver`] recording per-attack gain distributions into a
/// [`Telemetry`] registry.
#[derive(Debug)]
pub struct TelemetryAttackObserver<'t> {
    telemetry: &'t Telemetry,
    gains: Vec<MeanStd>,
}

impl<'t> TelemetryAttackObserver<'t> {
    /// An observer recording into `telemetry`.
    #[must_use]
    pub fn new(telemetry: &'t Telemetry) -> Self {
        Self {
            telemetry,
            gains: Vec::new(),
        }
    }

    /// Per-attack gain accumulators (suite order), for inspection or for
    /// merging per-worker observers via [`MeanStd::merge`].
    #[must_use]
    pub fn gain_stats(&self) -> &[MeanStd] {
        &self.gains
    }

    /// Folds another observer's per-attack accumulators into this one
    /// (parallel suite evaluation: one observer per worker, merged at the
    /// end).
    ///
    /// # Panics
    ///
    /// Panics when the observers saw suites of different widths.
    pub fn merge(&mut self, other: &TelemetryAttackObserver<'_>) {
        if self.gains.is_empty() {
            self.gains = other.gains.clone();
            return;
        }
        assert_eq!(
            self.gains.len(),
            other.gains.len(),
            "merging observers of different suite widths"
        );
        for (mine, theirs) in self.gains.iter_mut().zip(&other.gains) {
            mine.merge(theirs);
        }
    }
}

impl AttackObserver for TelemetryAttackObserver<'_> {
    fn suite_start(&mut self, deviations: usize, _runs: usize) {
        self.gains = vec![MeanStd::new(); deviations];
    }

    fn replication(&mut self, attack: usize, _name: &str, _r: usize, outcome: &PairedOutcome) {
        let t = self.telemetry;
        let m = t.metrics();
        let gain = outcome.gain();
        t.add(m.attack_replications, 1);
        t.record_scaled(m.attack_abs_gain_milli, gain.abs(), MILLI);
        if let Some(acc) = self.gains.get_mut(attack) {
            acc.push(gain);
        }
    }

    fn attack_summary(&mut self, attack: usize, name: &str, report: &GainReport) {
        if self.telemetry.has_sink() {
            self.telemetry.emit(
                &JsonObject::new("attack")
                    .u64_field("index", attack as u64)
                    .str_field("name", name)
                    .f64_field("gain", report.gain)
                    .f64_field("gain_se", report.gain_se)
                    .f64_field("z", report.z_score())
                    .u64_field("runs", report.runs as u64)
                    .finish(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::RunManifest;
    use rit_adversary::ArmOutcome;
    use rit_auction::cra::CraDiagnostics;

    fn telemetry() -> Telemetry {
        Telemetry::new(RunManifest::new("test", "0", "obs", 1, 1))
    }

    fn round(winners: usize, price: f64, consensus: u64) -> RoundTrace {
        RoundTrace {
            round: 0,
            q_before: 10,
            unit_asks: 20,
            winners,
            clearing_price: price,
            diagnostics: CraDiagnostics {
                consensus_count: consensus,
                ..CraDiagnostics::default()
            },
        }
    }

    #[test]
    fn auction_observer_aggregates_rounds_and_stalls() {
        let t = telemetry();
        let mut obs = TelemetryObserver::new(&t);
        obs.phase_start(1);
        obs.type_start(TaskTypeId::new(0), 10, None);
        obs.round(&round(3, 2.5, 4));
        obs.round(&round(0, 0.0, 0));
        obs.round(&round(2, 1.5, 2));
        obs.type_end();
        obs.phase_end();
        let m = t.metrics();
        assert_eq!(
            t.registry()
                .histogram_summary(m.span_micros[SpanKind::AuctionPhase as usize])
                .count,
            1
        );
        assert_eq!(t.registry().counter(m.auction_types), 1);
        assert_eq!(t.registry().counter(m.auction_rounds), 3);
        assert_eq!(t.registry().counter(m.auction_winners), 5);
        assert_eq!(t.registry().counter(m.auction_consensus), 6);
        // The stalled round contributes no clearing-price sample.
        assert_eq!(
            t.registry().histogram_summary(m.clearing_price_milli).count,
            2
        );
        let rounds = t.registry().histogram_summary(m.rounds_per_type);
        assert_eq!((rounds.count, rounds.min), (1, 3));
        let stalls = t.registry().histogram_summary(m.stall_rounds_per_type);
        assert_eq!((stalls.count, stalls.min), (1, 1));
    }

    fn paired(gain: f64) -> PairedOutcome {
        PairedOutcome {
            honest: ArmOutcome {
                utility: 1.0,
                completed: true,
                total_payment: 10.0,
            },
            deviant: ArmOutcome {
                utility: 1.0 + gain,
                completed: true,
                total_payment: 10.0,
            },
        }
    }

    #[test]
    fn attack_observer_accumulates_and_merges() {
        let t = telemetry();
        let mut a = TelemetryAttackObserver::new(&t);
        let mut b = TelemetryAttackObserver::new(&t);
        a.suite_start(2, 2);
        b.suite_start(2, 2);
        a.replication(0, "sybil", 0, &paired(0.5));
        a.replication(1, "misreport", 0, &paired(-0.25));
        b.replication(0, "sybil", 1, &paired(1.5));
        a.merge(&b);
        assert_eq!(a.gain_stats()[0].count(), 2);
        assert!((a.gain_stats()[0].mean() - 1.0).abs() < 1e-12);
        assert_eq!(a.gain_stats()[1].count(), 1);
        assert_eq!(t.registry().counter(t.metrics().attack_replications), 3);
        assert_eq!(
            t.registry()
                .histogram_summary(t.metrics().attack_abs_gain_milli)
                .count,
            3
        );
    }
}
