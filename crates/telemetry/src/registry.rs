//! The metrics registry: named counters, gauges, and histograms.
//!
//! Registration happens once at setup time through `&mut self` and returns
//! small `Copy` handles; all recording goes through `&self` and touches
//! only atomics, so a registry shared behind the global [`crate::Telemetry`]
//! is written from concurrent workers without locks and without allocating.
//! Metric names are `&'static str` by design: the registry never owns
//! string data, so building one costs exactly the three `Vec` spines.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::histogram::{Histogram, HistogramSummary};

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A registry of named metrics — see the [module docs](self).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, AtomicU64)>,
    gauges: Vec<(&'static str, AtomicU64)>, // f64 bit patterns
    histograms: Vec<(&'static str, Histogram)>,
}

/// Point-in-time copy of every registered metric, in registration order.
#[derive(Clone, Debug, PartialEq)]
pub struct RegistrySnapshot {
    /// `(name, value)` per counter.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` per gauge.
    pub gauges: Vec<(&'static str, f64)>,
    /// `(name, summary)` per histogram.
    pub histograms: Vec<(&'static str, HistogramSummary)>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a monotonic counter.
    pub fn register_counter(&mut self, name: &'static str) -> CounterId {
        self.counters.push((name, AtomicU64::new(0)));
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge (a last-write-wins `f64`).
    pub fn register_gauge(&mut self, name: &'static str) -> GaugeId {
        self.gauges.push((name, AtomicU64::new(0f64.to_bits())));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a log2-bucketed histogram.
    pub fn register_histogram(&mut self, name: &'static str) -> HistogramId {
        self.histograms.push((name, Histogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds `delta` to a counter.
    pub fn add(&self, id: CounterId, delta: u64) {
        self.counters[id.0].1.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of a counter.
    #[must_use]
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.0].1.load(Ordering::Relaxed)
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, id: GaugeId, value: f64) {
        self.gauges[id.0]
            .1
            .store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value of a gauge.
    #[must_use]
    pub fn gauge(&self, id: GaugeId) -> f64 {
        f64::from_bits(self.gauges[id.0].1.load(Ordering::Relaxed))
    }

    /// Records a value into a histogram.
    pub fn record(&self, id: HistogramId, value: u64) {
        self.histograms[id.0].1.record(value);
    }

    /// Records a real value into a histogram in fixed-point `scale` units
    /// (see [`Histogram::record_scaled`]).
    pub fn record_scaled(&self, id: HistogramId, value: f64, scale: f64) {
        self.histograms[id.0].1.record_scaled(value, scale);
    }

    /// Summary of one histogram.
    #[must_use]
    pub fn histogram_summary(&self, id: HistogramId) -> HistogramSummary {
        self.histograms[id.0].1.summary()
    }

    /// Snapshot of every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (*n, v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(n, v)| (*n, f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| (*n, h.summary()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut r = MetricsRegistry::new();
        let c = r.register_counter("test.counter");
        let g = r.register_gauge("test.gauge");
        let h = r.register_histogram("test.histogram");
        r.add(c, 3);
        r.add(c, 4);
        r.set_gauge(g, 1.5);
        r.set_gauge(g, 2.5);
        r.record(h, 10);
        r.record_scaled(h, 0.02, 1000.0);
        assert_eq!(r.counter(c), 7);
        assert_eq!(r.gauge(g), 2.5);
        assert_eq!(r.histogram_summary(h).count, 2);

        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("test.counter", 7)]);
        assert_eq!(snap.gauges, vec![("test.gauge", 2.5)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].0, "test.histogram");
        assert_eq!(snap.histograms[0].1.min, 10);
        assert_eq!(snap.histograms[0].1.max, 20);
    }

    #[test]
    fn handles_are_independent() {
        let mut r = MetricsRegistry::new();
        let a = r.register_counter("a");
        let b = r.register_counter("b");
        r.add(a, 1);
        r.add(b, 10);
        assert_eq!((r.counter(a), r.counter(b)), (1, 10));
    }

    #[test]
    fn recording_is_shareable_across_threads() {
        let mut r = MetricsRegistry::new();
        let c = r.register_counter("c");
        let h = r.register_histogram("h");
        let r = &r;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    for v in 0..100u64 {
                        r.add(c, 1);
                        r.record(h, v);
                    }
                });
            }
        });
        assert_eq!(r.counter(c), 400);
        assert_eq!(r.histogram_summary(h).count, 400);
    }
}
