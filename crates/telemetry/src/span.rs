//! Nested, thread-aware timed spans.
//!
//! A [`SpanGuard`] is an RAII wall-clock timer. [`span`] opens one against
//! the process-global [`Telemetry`] instance; when none is installed the
//! guard is inert — no clock read, no atomics, no allocation — so
//! uninstrumented binaries keep the exact pre-telemetry code path. With
//! telemetry installed, opening and closing a span is O(1): one atomic id
//! fetch, two thread-local cell writes, two monotonic clock reads, and a
//! relaxed histogram record into the span kind's `span.*_micros` histogram.
//! Only when a JSONL sink is attached does the close additionally render a
//! `span` event (that path allocates the event line, like every other
//! event).
//!
//! Parent links come from a per-thread cursor: spans opened on the same
//! thread nest (the guard restores its parent on drop), while spans on
//! different threads are roots of their own thread's timeline. Ids are
//! process-globally unique either way, and every event carries a stable
//! per-thread id plus a start offset against one process-wide epoch, so the
//! emitted stream reassembles into a single coherent timeline — this is
//! what [`crate::trace::chrome_trace`] renders for Perfetto /
//! `chrome://tracing`.
//!
//! Spans never draw randomness and never touch experiment state, so
//! enabling them changes no result (pinned end-to-end by the sim crate's
//! telemetry-equivalence test).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::events::JsonObject;
use crate::global::{self, Telemetry};

/// The instrumented seams of the workspace, one histogram per kind
/// (`span.<kind>_micros`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A whole binary invocation (opened right after install, closed before
    /// the final flush).
    Run,
    /// One experiment-grid cell, first item claimed to last item finished.
    GridCell,
    /// One scenario substrate generation (cache miss or passthrough).
    SubstrateGen,
    /// One auction phase — the full type loop, serial or parallel.
    AuctionPhase,
    /// One final-payment computation (Algorithm 3, Lines 22–27).
    PaymentPhase,
    /// One campaign (all epochs).
    Campaign,
    /// One campaign epoch (recruit, profile, run the job).
    Epoch,
    /// One attack-suite evaluation (all deviations, all replications).
    AttackProbe,
    /// One `parallel_map` work item.
    WorkerItem,
}

impl SpanKind {
    /// Number of span kinds (length of [`SpanKind::ALL`]).
    pub const COUNT: usize = 9;

    /// Every kind, in declaration order (the order of the
    /// `StandardMetrics` span histogram array).
    pub const ALL: [SpanKind; Self::COUNT] = [
        SpanKind::Run,
        SpanKind::GridCell,
        SpanKind::SubstrateGen,
        SpanKind::AuctionPhase,
        SpanKind::PaymentPhase,
        SpanKind::Campaign,
        SpanKind::Epoch,
        SpanKind::AttackProbe,
        SpanKind::WorkerItem,
    ];

    /// The event name of this kind (the `"name"` field of `span` events and
    /// of exported Chrome trace slices).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::GridCell => "grid.cell",
            SpanKind::SubstrateGen => "substrate.gen",
            SpanKind::AuctionPhase => "auction.phase",
            SpanKind::PaymentPhase => "payment.phase",
            SpanKind::Campaign => "campaign",
            SpanKind::Epoch => "campaign.epoch",
            SpanKind::AttackProbe => "attack.probe",
            SpanKind::WorkerItem => "worker.item",
        }
    }

    /// The registry name of this kind's duration histogram.
    #[must_use]
    pub fn metric_name(self) -> &'static str {
        match self {
            SpanKind::Run => "span.run_micros",
            SpanKind::GridCell => "span.grid_cell_micros",
            SpanKind::SubstrateGen => "span.substrate_gen_micros",
            SpanKind::AuctionPhase => "span.auction_phase_micros",
            SpanKind::PaymentPhase => "span.payment_phase_micros",
            SpanKind::Campaign => "span.campaign_micros",
            SpanKind::Epoch => "span.campaign_epoch_micros",
            SpanKind::AttackProbe => "span.attack_probe_micros",
            SpanKind::WorkerItem => "span.worker_item_micros",
        }
    }

    /// Index into the `StandardMetrics` span histogram array.
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

/// Monotonic span ids, process-global so ids from different threads never
/// collide. 0 is reserved for "no span" (inert guards, absent parents).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Stable small thread ids for trace export (`std::thread::ThreadId` has no
/// stable integer form). 0 is reserved for "unassigned".
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// The process-wide trace epoch: all `start_us` offsets are measured from
/// the first span-layer clock read of the process.
static TRACE_EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
}

/// Microseconds elapsed since the process trace epoch (established on
/// first call). Monotonic and allocation-free.
#[must_use]
pub fn trace_now_us() -> u64 {
    let epoch = *TRACE_EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// This thread's stable trace id (assigned on first use, starting at 1).
#[must_use]
pub fn current_thread_id() -> u64 {
    THREAD_ID.with(|cell| match cell.get() {
        0 => {
            let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            cell.set(id);
            id
        }
        id => id,
    })
}

/// A fresh process-globally-unique span id.
pub(crate) fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Renders one `span` event line. `status` is an optional terminal state
/// ("failed" for quarantined grid cells); `None` omits the field, so
/// ordinary spans render exactly as before.
pub(crate) fn span_event(
    kind: SpanKind,
    id: u64,
    parent: u64,
    thread: u64,
    start_us: u64,
    dur_us: u64,
    status: Option<&str>,
) -> String {
    let mut obj = JsonObject::new("span")
        .str_field("name", kind.name())
        .u64_field("id", id)
        .u64_field("parent", parent)
        .u64_field("thread", thread)
        .u64_field("start_us", start_us)
        .u64_field("dur_us", dur_us);
    if let Some(status) = status {
        obj = obj.str_field("status", status);
    }
    obj.finish()
}

/// An open span: records its wall time (and, with a sink, a `span` event)
/// when dropped. Obtained from [`span`] or [`Telemetry::start_span`].
#[derive(Debug)]
#[must_use = "a span measures until the guard is dropped"]
pub struct SpanGuard<'t> {
    active: Option<ActiveSpan<'t>>,
}

#[derive(Debug)]
struct ActiveSpan<'t> {
    telemetry: &'t Telemetry,
    kind: SpanKind,
    id: u64,
    parent: u64,
    start_us: u64,
}

impl<'t> SpanGuard<'t> {
    /// The do-nothing guard handed out when no telemetry is installed.
    pub(crate) fn inert() -> Self {
        Self { active: None }
    }

    pub(crate) fn start(telemetry: &'t Telemetry, kind: SpanKind) -> Self {
        let id = next_span_id();
        let parent = CURRENT_PARENT.with(|cell| cell.replace(id));
        Self {
            active: Some(ActiveSpan {
                telemetry,
                kind,
                id,
                parent,
                start_us: trace_now_us(),
            }),
        }
    }

    /// The span's id (0 for an inert guard).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.id)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let dur_us = trace_now_us().saturating_sub(a.start_us);
        CURRENT_PARENT.with(|cell| cell.set(a.parent));
        let t = a.telemetry;
        t.record(t.metrics().span_micros[a.kind.index()], dur_us);
        if t.has_sink() {
            t.emit(&span_event(
                a.kind,
                a.id,
                a.parent,
                current_thread_id(),
                a.start_us,
                dur_us,
                None,
            ));
        }
    }
}

/// Opens a span against the installed global telemetry. Inert — and free:
/// no clock read, no id allocation — when none is installed.
pub fn span(kind: SpanKind) -> SpanGuard<'static> {
    match global::active() {
        Some(t) => t.start_span(kind),
        None => SpanGuard::inert(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::RunManifest;

    fn manifest() -> RunManifest {
        RunManifest::new("test", "0.0.0", "span-unit", 1, 1)
    }

    #[test]
    fn kind_names_and_metric_names_are_unique_and_indexed() {
        let mut names: Vec<&str> = SpanKind::ALL.iter().map(|k| k.name()).collect();
        let mut metrics: Vec<&str> = SpanKind::ALL.iter().map(|k| k.metric_name()).collect();
        names.sort_unstable();
        names.dedup();
        metrics.sort_unstable();
        metrics.dedup();
        assert_eq!(names.len(), SpanKind::COUNT);
        assert_eq!(metrics.len(), SpanKind::COUNT);
        for (i, kind) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn inert_guard_records_nothing_and_has_id_zero() {
        let guard = SpanGuard::inert();
        assert_eq!(guard.id(), 0);
        drop(guard);
    }

    #[test]
    fn spans_nest_per_thread_and_record_histograms() {
        let t = Telemetry::new(manifest());
        let outer = t.start_span(SpanKind::Campaign);
        let outer_id = outer.id();
        assert_ne!(outer_id, 0);
        {
            let inner = t.start_span(SpanKind::Epoch);
            assert_ne!(inner.id(), outer_id);
        }
        drop(outer);
        let m = t.metrics();
        assert_eq!(
            t.registry()
                .histogram_summary(m.span_micros[SpanKind::Campaign.index()])
                .count,
            1
        );
        assert_eq!(
            t.registry()
                .histogram_summary(m.span_micros[SpanKind::Epoch.index()])
                .count,
            1
        );
    }

    #[test]
    fn sinked_spans_emit_parent_linked_events() {
        let dir = std::env::temp_dir().join("rit_telemetry_span_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spans.jsonl");
        let t = Telemetry::with_sink(manifest(), &path).unwrap();
        let outer = t.start_span(SpanKind::AuctionPhase);
        let outer_id = outer.id();
        let inner = t.start_span(SpanKind::PaymentPhase);
        let inner_id = inner.id();
        drop(inner);
        drop(outer);
        t.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Inner closes first, so its line precedes the outer's.
        let inner_line = text
            .lines()
            .find(|l| l.contains("\"name\":\"payment.phase\""))
            .expect("inner span event");
        assert!(inner_line.contains(&format!("\"id\":{inner_id}")));
        assert!(inner_line.contains(&format!("\"parent\":{outer_id}")));
        assert!(inner_line.contains("\"start_us\":"));
        assert!(inner_line.contains("\"dur_us\":"));
        let outer_line = text
            .lines()
            .find(|l| l.contains("\"name\":\"auction.phase\""))
            .expect("outer span event");
        assert!(outer_line.contains(&format!("\"id\":{outer_id}")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn thread_ids_are_stable_and_distinct() {
        let here = current_thread_id();
        assert_eq!(here, current_thread_id());
        let there = std::thread::spawn(current_thread_id).join().unwrap();
        assert_ne!(here, there);
        assert_ne!(there, 0);
    }
}
