//! Streaming scalar statistics.
//!
//! [`MeanStd`] started life in `rit_sim::metrics`; it moved here because
//! the telemetry registry's per-worker accumulators need [`MeanStd::merge`]
//! without depending on the simulation crate. `rit_sim::metrics` re-exports
//! it, so experiment code is unaffected.

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// ```
/// use rit_telemetry::MeanStd;
///
/// let mut acc = MeanStd::new();
/// for x in [1.0, 2.0, 3.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 2.0);
/// assert_eq!(acc.count(), 3);
/// assert!((acc.std_dev() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeanStd {
    count: u64,
    mean: f64,
    m2: f64,
}

impl MeanStd {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The sample standard deviation (Bessel-corrected).
    ///
    /// With fewer than two samples the standard deviation is undefined;
    /// this accessor deliberately reports `0.0` there so figure rendering
    /// (`mean ± std`) needs no special case. Use [`MeanStd::std_dev_opt`]
    /// when the undefined case must be distinguished from a genuinely
    /// zero-variance sample.
    ///
    /// ```
    /// use rit_telemetry::MeanStd;
    ///
    /// let mut acc = MeanStd::new();
    /// assert_eq!(acc.std_dev(), 0.0); // empty: documented 0.0
    /// acc.push(5.0);
    /// assert_eq!(acc.std_dev(), 0.0); // one sample: documented 0.0
    /// acc.push(7.0);
    /// assert!(acc.std_dev() > 0.0); // two samples: defined
    /// ```
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev_opt().unwrap_or(0.0)
    }

    /// The sample standard deviation, or `None` when it is undefined
    /// (`count < 2`).
    ///
    /// ```
    /// use rit_telemetry::MeanStd;
    ///
    /// let mut acc = MeanStd::new();
    /// assert_eq!(acc.std_dev_opt(), None);
    /// acc.push(5.0);
    /// assert_eq!(acc.std_dev_opt(), None);
    /// acc.push(5.0);
    /// assert_eq!(acc.std_dev_opt(), Some(0.0)); // defined, genuinely zero
    /// ```
    #[must_use]
    pub fn std_dev_opt(&self) -> Option<f64> {
        if self.count < 2 {
            None
        } else {
            Some((self.m2 / (self.count - 1) as f64).sqrt())
        }
    }

    /// Merges another accumulator (parallel reduction): the result is
    /// statistically identical to having pushed both sample streams into
    /// one accumulator. The telemetry registry uses this to combine
    /// per-worker accumulators.
    ///
    /// ```
    /// use rit_telemetry::MeanStd;
    ///
    /// let mut whole = MeanStd::new();
    /// let mut left = MeanStd::new();
    /// let mut right = MeanStd::new();
    /// for (i, x) in [1.0, 4.0, 9.0, 16.0, 25.0].into_iter().enumerate() {
    ///     whole.push(x);
    ///     if i < 2 { left.push(x) } else { right.push(x) }
    /// }
    /// left.merge(&right);
    /// assert_eq!(left.count(), whole.count());
    /// assert!((left.mean() - whole.mean()).abs() < 1e-12);
    /// assert!((left.std_dev() - whole.std_dev()).abs() < 1e-12);
    /// ```
    pub fn merge(&mut self, other: &MeanStd) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
    }
}

impl Extend<f64> for MeanStd {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 5.0 + 3.0).collect();
        let mut all = MeanStd::new();
        all.extend(xs.iter().copied());
        let mut a = MeanStd::new();
        let mut b = MeanStd::new();
        a.extend(xs[..37].iter().copied());
        b.extend(xs[37..].iter().copied());
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.std_dev() - all.std_dev()).abs() < 1e-9);
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn merge_with_empty_is_identity_in_both_directions() {
        let mut a = MeanStd::new();
        let mut b = MeanStd::new();
        b.push(4.0);
        a.merge(&b);
        assert_eq!(a.mean(), 4.0);
        let empty = MeanStd::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn std_dev_edge_cases_are_explicit() {
        let mut acc = MeanStd::new();
        assert_eq!(acc.std_dev_opt(), None);
        assert_eq!(acc.std_dev(), 0.0);
        acc.push(3.0);
        assert_eq!(acc.std_dev_opt(), None);
        assert_eq!(acc.std_dev(), 0.0);
        acc.push(3.0);
        assert_eq!(acc.std_dev_opt(), Some(0.0));
    }
}
