//! Chrome `trace_event` export of recorded `span` events.
//!
//! [`chrome_trace`] converts a `telemetry.jsonl` stream into the Trace
//! Event Format's "JSON object format" (`{"traceEvents":[...]}`), loadable
//! in Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`. Every
//! `span` event becomes a complete slice (`"ph":"X"`) with microsecond
//! timestamps against the process trace epoch and the emitting thread as
//! its `tid`, so a whole grid run — cells across workers, substrate
//! generations, auction phases nested inside items — renders as a flame
//! chart. The manifest line (always first in the stream) becomes process
//! metadata, labelling the track with the tool that produced the run.

use std::fmt::Write as _;

use crate::events::escape_json;
use crate::json::JsonValue;

/// Converts telemetry JSONL text into Chrome trace JSON. Non-span lines
/// (counters, epochs, attacks, …) are skipped; malformed lines are ignored
/// (the exporter is a viewer, not a validator). Returns the rendered JSON
/// and the number of exported slices.
#[must_use]
pub fn chrome_trace(jsonl: &str) -> (String, usize) {
    let mut out = String::from("{\"traceEvents\":[");
    let mut slices = 0usize;
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, event: &str| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(event);
    };
    for line in jsonl.lines() {
        let Ok(value) = JsonValue::parse(line) else {
            continue;
        };
        match value.get("event").and_then(JsonValue::as_str) {
            Some("manifest") => {
                let tool = value
                    .get("tool")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("rit");
                let mut meta = String::new();
                let _ = write!(
                    meta,
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    escape_json(tool)
                );
                push(&mut out, &mut first, &meta);
            }
            Some("span") => {
                let name = value
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("span");
                let get = |key: &str| value.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
                let mut slice = String::new();
                let _ = write!(
                    slice,
                    "{{\"name\":\"{}\",\"cat\":\"rit\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}}}}}",
                    escape_json(name),
                    get("start_us"),
                    get("dur_us"),
                    get("thread"),
                    get("id"),
                    get("parent"),
                );
                push(&mut out, &mut first, &slice);
                slices += 1;
            }
            _ => {}
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    (out, slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::Telemetry;
    use crate::manifest::RunManifest;
    use crate::span::SpanKind;

    #[test]
    fn exported_trace_is_schema_valid_chrome_trace_event_json() {
        let dir = std::env::temp_dir().join("rit_telemetry_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let t = Telemetry::with_sink(RunManifest::new("trace-unit", "0.0.0", "cfg", 7, 2), &path)
            .unwrap();
        {
            let _outer = t.start_span(SpanKind::GridCell);
            let _inner = t.start_span(SpanKind::SubstrateGen);
        }
        t.flush().unwrap();
        let jsonl = std::fs::read_to_string(&path).unwrap();
        let (trace, slices) = chrome_trace(&jsonl);
        assert_eq!(slices, 2);

        // Schema check: the export must parse as JSON and carry the Trace
        // Event Format's required fields on every event.
        let v = JsonValue::parse(&trace).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        assert!(events.len() >= 3, "metadata + 2 slices");
        for e in events {
            let ph = e.get("ph").and_then(JsonValue::as_str).expect("ph");
            assert!(matches!(ph, "X" | "M"), "unexpected phase {ph}");
            assert!(e.get("name").and_then(JsonValue::as_str).is_some());
            assert!(e.get("pid").and_then(JsonValue::as_u64).is_some());
            if ph == "X" {
                assert!(e.get("ts").and_then(JsonValue::as_u64).is_some());
                assert!(e.get("dur").and_then(JsonValue::as_u64).is_some());
                assert!(e.get("tid").and_then(JsonValue::as_u64).is_some());
            }
        }
        let meta = &events[0];
        assert_eq!(meta.get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            meta.get("args").unwrap().get("name").unwrap().as_str(),
            Some("trace-unit")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_span_lines_and_garbage_are_skipped() {
        let jsonl = "{\"event\":\"counter\",\"name\":\"x\",\"value\":1}\n\
                     not json at all\n\
                     {\"event\":\"span\",\"name\":\"run\",\"id\":1,\"parent\":0,\
                     \"thread\":1,\"start_us\":0,\"dur_us\":10}\n";
        let (trace, slices) = chrome_trace(jsonl);
        assert_eq!(slices, 1);
        let v = JsonValue::parse(&trace).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn empty_input_still_renders_valid_json() {
        let (trace, slices) = chrome_trace("");
        assert_eq!(slices, 0);
        let v = JsonValue::parse(&trace).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }
}
