//! Pins the telemetry path's allocation discipline: with a warm
//! [`RitWorkspace`] and a pre-built [`Telemetry`] registry, a
//! telemetry-observed auction phase allocates O(1) — the phase result's
//! own output vectors plus nothing per round. All registry recording is
//! relaxed atomics against pre-registered metrics; the observer itself is
//! two `u32`s of stack state.
//!
//! (The matching test in `rit-core` pins the `NoopObserver` fast path;
//! this file deliberately contains a single test so no concurrent test
//! thread pollutes the allocation counter.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::{Rit, RitConfig, RitWorkspace, RoundLimit};
use rit_model::{Ask, Job, TaskTypeId};
use rit_telemetry::{RunManifest, Telemetry, TelemetryObserver};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn telemetry_observed_warm_phase_allocates_only_its_outputs() {
    // The same round-heavy scenario as rit-core's Noop-path test: many
    // users, small capacities, enough tasks that allocation takes dozens
    // of rounds — any per-round allocation in the telemetry path would
    // scale the delta with the round count.
    let n = 3000usize;
    let job = Job::from_counts(vec![600]).unwrap();
    let asks: Vec<Ask> = (0..n)
        .map(|j| {
            let k = 1 + (j as u64 * 5) % 3;
            let price = 1.0 + ((j * 17) % 89) as f64 * 0.1;
            Ask::new(TaskTypeId::new(0), k, price).unwrap()
        })
        .collect();
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .unwrap();

    // Registry setup allocates (the one place telemetry may): build it
    // before the measured region.
    let telemetry = Telemetry::new(RunManifest::new("alloc-test", "0", "warm", 7, 1));

    // Warm the workspace under the telemetry observer.
    let mut ws = RitWorkspace::new();
    for seed in 0..2 {
        let mut observer = TelemetryObserver::new(&telemetry);
        rit.run_auction_phase_with(&job, &asks, &mut ws, &mut observer, &mut rng(seed))
            .unwrap();
    }

    // Measure several warm runs (distinct seeds, distinct round counts) so
    // the witness does not hinge on one RNG stream producing a long run.
    const MEASURED_RUNS: u64 = 3;
    let rounds_before = telemetry
        .registry()
        .counter(telemetry.metrics().auction_rounds);
    let before = ALLOCS.load(Ordering::SeqCst);
    let mut rounds: u32 = 0;
    for seed in 7..7 + MEASURED_RUNS {
        let mut observer = TelemetryObserver::new(&telemetry);
        let phase = rit
            .run_auction_phase_with(&job, &asks, &mut ws, &mut observer, &mut rng(seed))
            .unwrap();
        rounds += phase.rounds_used.iter().sum::<u32>();
    }
    let delta = ALLOCS.load(Ordering::SeqCst) - before;

    assert!(
        rounds >= 6,
        "scenario too easy to witness per-round behavior: {rounds} rounds"
    );
    // Same O(1)-per-phase budget as the Noop-path test: each phase result
    // owns 4 output vectors, plus allocator slack. Telemetry recording
    // must contribute zero per-round allocations.
    assert!(
        delta <= 16 * MEASURED_RUNS,
        "telemetry-observed warm runs allocated {delta} times over {rounds} rounds; \
         the telemetry path is leaking per-round allocations"
    );

    // The observer really ran: the registry saw exactly the measured
    // rounds on top of whatever the warm-up contributed.
    assert_eq!(
        telemetry
            .registry()
            .counter(telemetry.metrics().auction_rounds),
        rounds_before + u64::from(rounds)
    );
}

fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}
