//! Pins the span layer's allocation discipline: with telemetry **not
//! installed**, [`rit_telemetry::span`] guards are fully inert — zero
//! allocations per open/close — and with a registry (no sink) a span is
//! O(1) relaxed-atomic recording, also allocation-free after the first
//! thread-local touch.
//!
//! (Single test per file so no concurrent test thread pollutes the
//! allocation counter; the global-install measurement must also run
//! before anything else installs telemetry in this process.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rit_telemetry::{RunManifest, SpanKind, Telemetry};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn span_guards_allocate_nothing_installed_or_not() {
    const ITERS: u64 = 10_000;

    // The property pinned here is "no *per-iteration* allocation": a leak in
    // the guard path shows up as O(ITERS) allocations. The counter is
    // process-global, though, and the measured loops take long enough that
    // an out-of-band allocation (the libtest harness main thread waking up,
    // OS-level lazy init) can land inside the window — so each phase allows
    // a small constant slack instead of demanding an exact zero.
    const AMBIENT_SLACK: u64 = 8;

    // Phase 1: telemetry not installed — the exact state of every run that
    // does not set RIT_TELEMETRY. Guards must be fully inert: any
    // allocation here would tax the auction round loop of every untraced
    // run.
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..ITERS {
        let outer = rit_telemetry::span(SpanKind::AuctionPhase);
        let inner = rit_telemetry::span(SpanKind::WorkerItem);
        drop(inner);
        drop(outer);
    }
    let delta = ALLOCS.load(Ordering::SeqCst) - before;
    assert!(
        delta <= AMBIENT_SLACK,
        "uninstalled span guards allocated {delta} times over {ITERS} nested pairs"
    );

    // Phase 2: registry without a sink. Building the registry allocates
    // (that is the one permitted place); the guards themselves record into
    // pre-registered histograms with relaxed atomics only. Warm one
    // open/close first so lazy thread-local/clock init is outside the
    // measured window.
    let telemetry = Telemetry::new(RunManifest::new("alloc-test", "0", "span", 7, 1));
    drop(telemetry.start_span(SpanKind::Run));
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..ITERS {
        let outer = telemetry.start_span(SpanKind::AuctionPhase);
        let inner = telemetry.start_span(SpanKind::WorkerItem);
        drop(inner);
        drop(outer);
    }
    let delta = ALLOCS.load(Ordering::SeqCst) - before;
    assert!(
        delta <= AMBIENT_SLACK,
        "sinkless span guards allocated {delta} times over {ITERS} nested pairs"
    );

    // The spans really recorded: both histograms saw every iteration.
    let m = telemetry.metrics();
    let phase = telemetry
        .registry()
        .histogram_summary(m.span_micros[SpanKind::AuctionPhase as usize]);
    let item = telemetry
        .registry()
        .histogram_summary(m.span_micros[SpanKind::WorkerItem as usize]);
    assert_eq!((phase.count, item.count), (ITERS, ITERS));
}
