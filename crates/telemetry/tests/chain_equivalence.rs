//! Pins the acceptance claim that telemetry composes with tracing without
//! changing anything: `ObserverChain(TraceObserver, TelemetryObserver)` on
//! a fixed seed produces bit-identical `TypeTrace`s — and a bit-identical
//! phase result — to `TraceObserver` alone, because observers never draw
//! randomness.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::{ObserverChain, Rit, RitConfig, RitWorkspace, RoundLimit, TraceObserver};
use rit_model::{Ask, Job, TaskTypeId};
use rit_telemetry::{RunManifest, Telemetry, TelemetryObserver};

fn scenario() -> (Job, Vec<Ask>, Rit) {
    let n = 800usize;
    let job = Job::from_counts(vec![120, 90]).unwrap();
    let asks: Vec<Ask> = (0..n)
        .map(|j| {
            let t = TaskTypeId::new((j % 2) as u32);
            let k = 1 + (j as u64 * 7) % 4;
            let price = 0.5 + ((j * 13) % 97) as f64 * 0.11;
            Ask::new(t, k, price).unwrap()
        })
        .collect();
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .unwrap();
    (job, asks, rit)
}

#[test]
fn chained_trace_plus_telemetry_is_bit_identical_to_trace_alone() {
    const SEED: u64 = 2017;
    let (job, asks, rit) = scenario();
    let telemetry = Telemetry::new(RunManifest::new("test", "0", "chain", SEED, 1));

    let mut ws = RitWorkspace::new();
    let mut trace_alone = TraceObserver::new();
    let phase_alone = rit
        .run_auction_phase_with(
            &job,
            &asks,
            &mut ws,
            &mut trace_alone,
            &mut SmallRng::seed_from_u64(SEED),
        )
        .unwrap();

    let mut chain = ObserverChain::new(TraceObserver::new(), TelemetryObserver::new(&telemetry));
    let phase_chained = rit
        .run_auction_phase_with(
            &job,
            &asks,
            &mut ws,
            &mut chain,
            &mut SmallRng::seed_from_u64(SEED),
        )
        .unwrap();

    // Bit-identical traces: same rounds, winners, prices, diagnostics.
    let (trace_chained, _telemetry_obs) = chain.into_inner();
    assert_eq!(trace_alone.traces(), trace_chained.traces());

    // Bit-identical phase results.
    assert_eq!(phase_alone.allocation, phase_chained.allocation);
    assert_eq!(phase_alone.auction_payments, phase_chained.auction_payments);
    assert_eq!(phase_alone.rounds_used, phase_chained.rounds_used);
    assert_eq!(phase_alone.unallocated, phase_chained.unallocated);

    // And the telemetry side actually observed the run it rode along on:
    // counters agree with what the trace says happened.
    let total_rounds: usize = trace_chained.traces().iter().map(|t| t.rounds.len()).sum();
    let m = telemetry.metrics();
    assert_eq!(
        telemetry.registry().counter(m.auction_rounds),
        total_rounds as u64
    );
    assert_eq!(
        telemetry.registry().counter(m.auction_types),
        trace_chained.traces().len() as u64
    );
    let total_winners: u64 = trace_chained
        .traces()
        .iter()
        .flat_map(|t| t.rounds.iter())
        .map(|r| r.winners as u64)
        .sum();
    assert_eq!(
        telemetry.registry().counter(m.auction_winners),
        total_winners
    );
    assert_eq!(
        telemetry
            .registry()
            .histogram_summary(m.round_winners)
            .count,
        total_rounds as u64
    );
}
