//! Property tests of the log2 histogram: recorded values always fall in
//! the bucket the geometry reports for them, and percentile summaries are
//! monotone and bounded by the observed range.

use proptest::prelude::*;
use rit_telemetry::Histogram;

proptest! {
    #[test]
    fn every_value_falls_in_its_reported_bucket(value in any::<u64>()) {
        let index = Histogram::bucket_index(value);
        let (low, high) = Histogram::bucket_bounds(index);
        prop_assert!(low <= value && value <= high,
            "value {value} outside bucket {index} = [{low}, {high}]");
    }

    #[test]
    fn buckets_partition_the_domain(value in any::<u64>()) {
        // The value's bucket is the *only* bucket containing it.
        let index = Histogram::bucket_index(value);
        for other in 0..rit_telemetry::histogram::NUM_BUCKETS {
            let (low, high) = Histogram::bucket_bounds(other);
            let contains = low <= value && value <= high;
            prop_assert_eq!(contains, other == index);
        }
    }

    #[test]
    // Values capped so the histogram's running sum cannot wrap: `mean` is
    // only meaningful while the total fits in u64 (see `Histogram::record`).
    fn percentiles_are_monotone_and_bounded(values in prop::collection::vec(0u64..(1 << 48), 1..300)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.summary();
        let observed_min = *values.iter().min().unwrap();
        let observed_max = *values.iter().max().unwrap();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.min, observed_min);
        prop_assert_eq!(s.max, observed_max);
        prop_assert!(s.p50 <= s.p90, "p50 {} > p90 {}", s.p50, s.p90);
        prop_assert!(s.p90 <= s.p99, "p90 {} > p99 {}", s.p90, s.p99);
        prop_assert!(s.min <= s.p50, "p50 {} below min {}", s.p50, s.min);
        prop_assert!(s.p99 <= s.max, "p99 {} above max {}", s.p99, s.max);
        prop_assert!(s.mean >= s.min as f64 && s.mean <= s.max as f64);
    }

    #[test]
    fn p50_upper_bounds_at_least_half_the_mass(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.summary();
        // p50 is a bucket upper bound: at least half the recorded values
        // must be ≤ it (the defining property of a median upper bound).
        let at_or_below = values.iter().filter(|&&v| v <= s.p50).count();
        prop_assert!(
            2 * at_or_below >= values.len(),
            "only {at_or_below}/{} values ≤ p50 {}",
            values.len(),
            s.p50
        );
    }
}
