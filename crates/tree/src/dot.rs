//! Graphviz (DOT) export of incentive trees.
//!
//! Small solicitation trees — counterexamples, attack scenarios, unit-test
//! fixtures — are much easier to reason about drawn. `to_dot` renders the
//! tree with caller-supplied labels:
//!
//! ```
//! use rit_tree::{dot, generate};
//!
//! let tree = generate::path(2);
//! let out = dot::to_dot(&tree, |node| format!("{node}"));
//! assert!(out.starts_with("digraph incentive_tree"));
//! assert!(out.contains("n0 -> n1"));
//! ```

use std::fmt::Write as _;

use crate::{IncentiveTree, NodeId};

/// Renders the tree in DOT format. `label` supplies the display text per
/// node; quotes and backslashes in labels are escaped.
pub fn to_dot<F: Fn(NodeId) -> String>(tree: &IncentiveTree, label: F) -> String {
    let mut out = String::from("digraph incentive_tree {\n  rankdir=TB;\n");
    for &node in tree.preorder() {
        let text = escape(&label(node));
        let shape = if node.is_root() { "box" } else { "ellipse" };
        let _ = writeln!(
            out,
            "  n{} [label=\"{text}\", shape={shape}];",
            node.index()
        );
    }
    for &node in tree.preorder() {
        for &child in tree.children(node) {
            let _ = writeln!(out, "  n{} -> n{};", node.index(), child.index());
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn renders_all_nodes_and_edges() {
        let tree = generate::star(3);
        let out = to_dot(&tree, |n| format!("{n}"));
        for i in 0..=3 {
            assert!(out.contains(&format!("n{i} [label=")), "missing node {i}");
        }
        assert_eq!(out.matches("->").count(), 3);
        assert!(out.contains("shape=box")); // platform root
        assert!(out.ends_with("}\n"));
    }

    #[test]
    fn escapes_labels() {
        let tree = generate::path(1);
        let out = to_dot(&tree, |_| "say \"hi\" \\ bye".into());
        assert!(out.contains("say \\\"hi\\\" \\\\ bye"));
    }

    #[test]
    fn empty_tree_renders_root_only() {
        let tree = crate::IncentiveTree::platform_only();
        let out = to_dot(&tree, |n| format!("{n}"));
        assert!(out.contains("n0 [label=\"root\""));
        assert!(!out.contains("->"));
    }
}
