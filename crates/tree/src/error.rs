//! Errors for incentive-tree construction and transformation.

use std::error::Error;
use std::fmt;

/// Error returned when building or transforming an incentive tree.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeError {
    /// A parent pointer referenced a node outside the tree.
    ParentOutOfRange {
        /// Index of the node with the bad pointer.
        node: usize,
        /// The referenced parent index.
        parent: usize,
        /// Number of nodes in the tree.
        num_nodes: usize,
    },
    /// The parent pointers contain a cycle (some node never reaches the root).
    CycleDetected {
        /// A node on the cycle.
        node: usize,
    },
    /// A node id referenced a node outside the tree.
    NodeOutOfRange {
        /// The offending index.
        node: usize,
        /// Number of nodes in the tree.
        num_nodes: usize,
    },
    /// A sybil attack targeted the platform root, which has no parent to
    /// attach identities to.
    CannotAttackRoot,
    /// A sybil attack requested fewer than two identities (δ > 1 by
    /// definition; δ = 1 is not an attack).
    TooFewIdentities {
        /// The requested identity count.
        requested: usize,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ParentOutOfRange {
                node,
                parent,
                num_nodes,
            } => write!(
                f,
                "node {node} references parent {parent} outside tree of {num_nodes} nodes"
            ),
            Self::CycleDetected { node } => {
                write!(f, "parent pointers contain a cycle through node {node}")
            }
            Self::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range for tree of {num_nodes} nodes")
            }
            Self::CannotAttackRoot => write!(f, "the platform root cannot launch a sybil attack"),
            Self::TooFewIdentities { requested } => write!(
                f,
                "a sybil attack needs at least 2 identities, got {requested}"
            ),
        }
    }
}

impl Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty() {
        let errs = [
            TreeError::ParentOutOfRange {
                node: 1,
                parent: 9,
                num_nodes: 2,
            },
            TreeError::CycleDetected { node: 3 },
            TreeError::NodeOutOfRange {
                node: 5,
                num_nodes: 2,
            },
            TreeError::CannotAttackRoot,
            TreeError::TooFewIdentities { requested: 1 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TreeError>();
    }
}
