//! Synthetic incentive trees for tests, examples and micro-benchmarks.
//!
//! Realistic solicitation trees come from [`rit-socialgraph`]'s
//! spanning-forest construction; the shapes here are the standard extreme
//! and average cases used to exercise tree algorithms.
//!
//! [`rit-socialgraph`]: https://docs.rs/rit-socialgraph

use rand::Rng;

use crate::{IncentiveTree, NodeId};

/// A path of `n` users: root ─ P₁ ─ P₂ ─ … ─ Pₙ (maximum depth).
#[must_use]
pub fn path(n: usize) -> IncentiveTree {
    let parents: Vec<NodeId> = (0..n as u32).map(NodeId::new).collect();
    IncentiveTree::from_parents(&parents).expect("path parents are valid")
}

/// A star of `n` users, all children of the platform root (minimum depth —
/// everyone joined at the very beginning, nobody solicited anyone).
#[must_use]
pub fn star(n: usize) -> IncentiveTree {
    let parents = vec![NodeId::ROOT; n];
    IncentiveTree::from_parents(&parents).expect("star parents are valid")
}

/// A complete `k`-ary tree with `n` users (breadth-first filling).
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn k_ary(n: usize, k: usize) -> IncentiveTree {
    assert!(k > 0, "arity must be positive");
    let parents: Vec<NodeId> = (0..n)
        .map(|i| {
            if i < k {
                NodeId::ROOT
            } else {
                // Users are nodes 1..=n; user i (0-based) hangs under user (i−k)/k… in
                // breadth-first order every user has at most k children.
                NodeId::from_user_index((i - k) / k)
            }
        })
        .collect();
    IncentiveTree::from_parents(&parents).expect("k-ary parents are valid")
}

/// A uniform random recursive tree: each new user picks its inviter
/// uniformly among the platform and all earlier users. Expected depth is
/// `Θ(log n)` — a reasonable stand-in for organic referral cascades.
#[must_use]
pub fn uniform_recursive<R: Rng + ?Sized>(n: usize, rng: &mut R) -> IncentiveTree {
    let parents: Vec<NodeId> = (0..n)
        .map(|i| NodeId::new(rng.gen_range(0..=i as u32)))
        .collect();
    IncentiveTree::from_parents(&parents).expect("recursive parents are valid")
}

/// A preferential-attachment recursive tree: each new user picks its inviter
/// with probability proportional to `1 + current child count` — produces the
/// heavy-tailed branching seen in viral recruitment (the DARPA Network
/// Challenge tree had a few huge recruiters and many leaves).
#[must_use]
pub fn preferential<R: Rng + ?Sized>(n: usize, rng: &mut R) -> IncentiveTree {
    let mut parents: Vec<NodeId> = Vec::with_capacity(n);
    // weights[i] = 1 + children(node i); node 0 is the root.
    let mut weights: Vec<u64> = vec![1];
    let mut total: u64 = 1;
    for _ in 0..n {
        let mut pick = rng.gen_range(0..total);
        let mut chosen = 0usize;
        for (i, &w) in weights.iter().enumerate() {
            if pick < w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        parents.push(NodeId::new(chosen as u32));
        weights[chosen] += 1;
        weights.push(1);
        total += 2;
    }
    IncentiveTree::from_parents(&parents).expect("preferential parents are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn path_shape() {
        let t = path(5);
        assert_eq!(t.num_users(), 5);
        assert_eq!(t.depth(NodeId::new(5)), 5);
        assert_eq!(t.children(NodeId::new(2)), &[NodeId::new(3)]);
    }

    #[test]
    fn star_shape() {
        let t = star(5);
        assert_eq!(t.children(NodeId::ROOT).len(), 5);
        for u in t.user_nodes() {
            assert_eq!(t.depth(u), 1);
        }
    }

    #[test]
    fn empty_generators() {
        assert_eq!(path(0).num_users(), 0);
        assert_eq!(star(0).num_users(), 0);
        assert_eq!(k_ary(0, 3).num_users(), 0);
    }

    #[test]
    fn k_ary_shape() {
        let t = k_ary(7, 2);
        // Complete binary tree: root has 2 children, each has 2, etc.
        assert_eq!(t.children(NodeId::ROOT).len(), 2);
        assert_eq!(t.children(NodeId::new(1)).len(), 2);
        assert_eq!(t.depth(NodeId::new(7)), 3);
        for u in t.user_nodes() {
            assert!(t.children(u).len() <= 2);
        }
    }

    #[test]
    fn uniform_recursive_is_valid_and_seeded() {
        let a = uniform_recursive(500, &mut SmallRng::seed_from_u64(1));
        let b = uniform_recursive(500, &mut SmallRng::seed_from_u64(1));
        assert_eq!(a, b);
        assert_eq!(a.num_users(), 500);
        // Log-depth sanity: a 500-node recursive tree is far shallower than a path.
        let max_depth = a.user_nodes().map(|u| a.depth(u)).max().unwrap();
        assert!(max_depth < 60, "unexpectedly deep: {max_depth}");
    }

    #[test]
    fn preferential_has_heavy_hub() {
        let t = preferential(2000, &mut SmallRng::seed_from_u64(2));
        assert_eq!(t.num_users(), 2000);
        let max_children = std::iter::once(NodeId::ROOT)
            .chain(t.user_nodes())
            .map(|u| t.children(u).len())
            .max()
            .unwrap();
        assert!(
            max_children > 20,
            "expected a hub, max degree {max_children}"
        );
    }
}
