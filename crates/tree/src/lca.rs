//! Lowest-common-ancestor and distance queries.
//!
//! Analysis tooling regularly needs tree distances — e.g. measuring how far
//! a sybil identity drifted from its victim's original position, or
//! profiling referral chains. [`LcaIndex`] preprocesses a tree in
//! `O(N log N)` (sparse table over the Euler tour of depths) and answers
//! [`LcaIndex::lca`] / [`LcaIndex::distance`] in `O(1)`.
//!
//! ```
//! use rit_tree::{generate, lca::LcaIndex, NodeId};
//!
//! let tree = generate::k_ary(7, 2); // complete binary tree
//! let index = LcaIndex::build(&tree);
//! // Users 4 and 5 share user 2 as parent… in BFS order: children of P2
//! // are P4 and P5? k_ary(7,2): P1,P2 under root; P3,P4 under P1; P5,P6 under P2; P7 under P3.
//! assert_eq!(index.lca(NodeId::new(3), NodeId::new(4)), NodeId::new(1));
//! assert_eq!(index.distance(NodeId::new(3), NodeId::new(4)), 2);
//! assert_eq!(index.lca(NodeId::new(3), NodeId::new(5)), NodeId::ROOT);
//! ```

use crate::{IncentiveTree, NodeId};

/// A preprocessed LCA/distance index over one tree.
///
/// The index borrows nothing: it snapshots the Euler structure at build
/// time, so it stays valid for the lifetime of the `IncentiveTree` value it
/// was built from (trees are immutable).
#[derive(Clone, Debug)]
pub struct LcaIndex {
    // Euler tour of nodes (2N−1 entries) and their depths.
    euler: Vec<NodeId>,
    euler_depth: Vec<u32>,
    // First occurrence of each node in the tour.
    first: Vec<u32>,
    // Sparse table of argmin-depth positions over `euler_depth`.
    table: Vec<Vec<u32>>,
    depth: Vec<u32>,
}

impl LcaIndex {
    /// Builds the index in `O(N log N)`.
    #[must_use]
    pub fn build(tree: &IncentiveTree) -> Self {
        let n = tree.num_nodes();
        let mut euler: Vec<NodeId> = Vec::with_capacity(2 * n);
        let mut euler_depth: Vec<u32> = Vec::with_capacity(2 * n);
        let mut first = vec![u32::MAX; n];

        // Iterative Euler tour: push node on entry and after each child.
        let mut stack: Vec<(NodeId, usize)> = vec![(NodeId::ROOT, 0)];
        while let Some(&mut (v, ref mut next_child)) = stack.last_mut() {
            if *next_child == 0 {
                // entry visit
                if first[v.index()] == u32::MAX {
                    first[v.index()] = euler.len() as u32;
                }
                euler.push(v);
                euler_depth.push(tree.depth(v));
            }
            let children = tree.children(v);
            if *next_child < children.len() {
                let c = children[*next_child];
                *next_child += 1;
                stack.push((c, 0));
            } else {
                stack.pop();
                // Re-visit the parent after finishing this subtree.
                if let Some(&(p, _)) = stack.last() {
                    euler.push(p);
                    euler_depth.push(tree.depth(p));
                }
            }
        }

        // Sparse table over euler_depth (positions of minima).
        let m = euler.len();
        let levels = (usize::BITS - m.leading_zeros()) as usize;
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        table.push((0..m as u32).collect());
        let mut span = 1usize;
        while 2 * span <= m {
            let prev = table.last().expect("at least level 0");
            let mut row = Vec::with_capacity(m - 2 * span + 1);
            for i in 0..=(m - 2 * span) {
                let a = prev[i];
                let b = prev[i + span];
                row.push(if euler_depth[a as usize] <= euler_depth[b as usize] {
                    a
                } else {
                    b
                });
            }
            table.push(row);
            span *= 2;
        }

        let depth = (0..n as u32).map(|i| tree.depth(NodeId::new(i))).collect();
        Self {
            euler,
            euler_depth,
            first,
            table,
            depth,
        }
    }

    fn argmin(&self, lo: usize, hi: usize) -> usize {
        // Inclusive range over euler positions.
        debug_assert!(lo <= hi);
        let len = hi - lo + 1;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize;
        let a = self.table[k][lo];
        let b = self.table[k][hi + 1 - (1 << k)];
        if self.euler_depth[a as usize] <= self.euler_depth[b as usize] {
            a as usize
        } else {
            b as usize
        }
    }

    /// The lowest common ancestor of `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range for the indexed tree.
    #[must_use]
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let fa = self.first[a.index()] as usize;
        let fb = self.first[b.index()] as usize;
        let (lo, hi) = if fa <= fb { (fa, fb) } else { (fb, fa) };
        self.euler[self.argmin(lo, hi)]
    }

    /// The edge distance between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        let l = self.lca(a, b);
        self.depth[a.index()] + self.depth[b.index()] - 2 * self.depth[l.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn naive_lca(tree: &IncentiveTree, a: NodeId, b: NodeId) -> NodeId {
        let ancestors_a: Vec<NodeId> = std::iter::once(a).chain(tree.ancestors(a)).collect();
        let mut cursor = b;
        loop {
            if ancestors_a.contains(&cursor) {
                return cursor;
            }
            cursor = tree.parent(cursor).expect("root is a common ancestor");
        }
    }

    #[test]
    fn matches_naive_on_random_trees() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..15 {
            let n = rng.gen_range(1..120);
            let tree = generate::uniform_recursive(n, &mut rng);
            let index = LcaIndex::build(&tree);
            for _ in 0..80 {
                let a = NodeId::new(rng.gen_range(0..=n as u32));
                let b = NodeId::new(rng.gen_range(0..=n as u32));
                let expected = naive_lca(&tree, a, b);
                assert_eq!(index.lca(a, b), expected, "lca({a}, {b})");
                // Distance consistency.
                let d = index.distance(a, b);
                let expected_d = tree.depth(a) + tree.depth(b) - 2 * tree.depth(expected);
                assert_eq!(d, expected_d);
            }
        }
    }

    #[test]
    fn identities_and_edges() {
        let tree = generate::path(5);
        let index = LcaIndex::build(&tree);
        for u in tree.user_nodes() {
            assert_eq!(index.lca(u, u), u);
            assert_eq!(index.distance(u, u), 0);
            if let Some(p) = tree.parent(u) {
                assert_eq!(index.lca(u, p), p);
                assert_eq!(index.distance(u, p), 1);
            }
        }
        // Path extremes.
        assert_eq!(index.distance(NodeId::ROOT, NodeId::new(5)), 5);
    }

    #[test]
    fn star_siblings_meet_at_root() {
        let tree = generate::star(6);
        let index = LcaIndex::build(&tree);
        assert_eq!(index.lca(NodeId::new(1), NodeId::new(6)), NodeId::ROOT);
        assert_eq!(index.distance(NodeId::new(1), NodeId::new(6)), 2);
    }

    #[test]
    fn platform_only_tree() {
        let tree = IncentiveTree::platform_only();
        let index = LcaIndex::build(&tree);
        assert_eq!(index.lca(NodeId::ROOT, NodeId::ROOT), NodeId::ROOT);
        assert_eq!(index.distance(NodeId::ROOT, NodeId::ROOT), 0);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        let tree = generate::path(100_000);
        let index = LcaIndex::build(&tree);
        assert_eq!(index.distance(NodeId::new(1), NodeId::new(100_000)), 99_999);
    }
}
