//! The incentive tree `T` used by the RIT mechanism.
//!
//! The paper (§3-A) models solicitation as a tree: the crowdsensing platform
//! is the root, users who join at the very beginning are children of the
//! root, and there is an edge `Pᵢ → Pⱼ` whenever `Pⱼ` joined by `Pᵢ`'s
//! solicitation. Each user notifies the platform of its inviter, so the
//! platform knows the full structure when solicitation ends.
//!
//! This crate provides:
//!
//! * [`IncentiveTree`] — an immutable arena tree with O(1) parent/depth
//!   lookups, children slices, and a precomputed Euler tour enabling O(1)
//!   ancestor tests and O(N) subtree aggregation (the key to the paper's
//!   linear-time payment-determination phase, Theorem 3);
//! * [`IncentiveTreeBuilder`] and [`IncentiveTree::from_parents`] —
//!   construction with full validation (single root, no cycles);
//! * [`sybil`] — the §3-B sybil-attack transformation: replace one node by
//!   `δ` fake identities attached to the victim's parent or to each other,
//!   re-homing the original children;
//! * [`generate`] — simple synthetic trees (path, star, k-ary, random
//!   recursive, preferential) for tests and micro-benchmarks;
//! * [`lca`] — O(1) lowest-common-ancestor and distance queries after an
//!   `O(N log N)` build;
//! * [`dot`] — Graphviz export for small trees;
//! * [`stats`] — depth/branching summaries.
//!
//! # Example
//!
//! ```
//! use rit_tree::IncentiveTreeBuilder;
//!
//! // platform ── P1 ── P2
//! //          └─ P3
//! let mut b = IncentiveTreeBuilder::new();
//! let p1 = b.add_child(rit_tree::NodeId::ROOT);
//! let _p2 = b.add_child(p1);
//! let _p3 = b.add_child(rit_tree::NodeId::ROOT);
//! let tree = b.build();
//! assert_eq!(tree.num_users(), 3);
//! assert_eq!(tree.depth(p1), 1);
//! assert_eq!(tree.subtree_size(p1), 2); // P1 and P2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
mod error;
pub mod generate;
pub mod lca;
pub mod stats;
pub mod sybil;
mod traverse;
mod tree;

pub use error::TreeError;
pub use traverse::{Ancestors, Descendants};
pub use tree::{IncentiveTree, IncentiveTreeBuilder, NodeId};
