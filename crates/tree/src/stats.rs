//! Descriptive statistics of incentive trees.
//!
//! The paper's guarantees hold for any tree shape, but the *magnitude* of
//! solicitation rewards depends on depth (the `(1/2)^{rᵢ}` weights decay
//! geometrically). These statistics let experiments report the shape of the
//! trees they ran on.

use crate::{IncentiveTree, NodeId};

/// Summary statistics of an incentive tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeStats {
    /// Number of user nodes `N`.
    pub num_users: usize,
    /// Maximum user depth (0 when there are no users).
    pub max_depth: u32,
    /// Mean user depth (0 when there are no users).
    pub mean_depth: f64,
    /// Number of leaf users (no children).
    pub num_leaves: usize,
    /// Number of users who solicited at least one other user.
    pub num_recruiters: usize,
    /// Largest child count over the root and all users.
    pub max_branching: usize,
    /// Users who joined directly (children of the platform root).
    pub num_seeds: usize,
}

impl TreeStats {
    /// Computes statistics for `tree` in one pass.
    #[must_use]
    pub fn compute(tree: &IncentiveTree) -> Self {
        let num_users = tree.num_users();
        let mut max_depth = 0u32;
        let mut depth_sum = 0u64;
        let mut num_leaves = 0usize;
        let mut num_recruiters = 0usize;
        let mut max_branching = tree.children(NodeId::ROOT).len();
        for u in tree.user_nodes() {
            let d = tree.depth(u);
            max_depth = max_depth.max(d);
            depth_sum += u64::from(d);
            let c = tree.children(u).len();
            max_branching = max_branching.max(c);
            if c == 0 {
                num_leaves += 1;
            } else {
                num_recruiters += 1;
            }
        }
        Self {
            num_users,
            max_depth,
            mean_depth: if num_users == 0 {
                0.0
            } else {
                depth_sum as f64 / num_users as f64
            },
            num_leaves,
            num_recruiters,
            max_branching,
            num_seeds: tree.children(NodeId::ROOT).len(),
        }
    }
}

/// Per-depth user counts: `histogram[d - 1]` is the number of users at depth
/// `d` (depth 1 = direct children of the platform root). The root itself is
/// not counted.
#[must_use]
pub fn depth_histogram(tree: &IncentiveTree) -> Vec<usize> {
    let mut hist = Vec::new();
    for u in tree.user_nodes() {
        let d = tree.depth(u) as usize;
        if d > hist.len() {
            hist.resize(d, 0);
        }
        hist[d - 1] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn stats_of_path() {
        let t = generate::path(4);
        let s = TreeStats::compute(&t);
        assert_eq!(s.num_users, 4);
        assert_eq!(s.max_depth, 4);
        assert_eq!(s.mean_depth, 2.5);
        assert_eq!(s.num_leaves, 1);
        assert_eq!(s.num_recruiters, 3);
        assert_eq!(s.max_branching, 1);
        assert_eq!(s.num_seeds, 1);
    }

    #[test]
    fn stats_of_star() {
        let t = generate::star(6);
        let s = TreeStats::compute(&t);
        assert_eq!(s.max_depth, 1);
        assert_eq!(s.mean_depth, 1.0);
        assert_eq!(s.num_leaves, 6);
        assert_eq!(s.num_recruiters, 0);
        assert_eq!(s.max_branching, 6);
        assert_eq!(s.num_seeds, 6);
    }

    #[test]
    fn stats_of_empty_tree() {
        let t = IncentiveTree::platform_only();
        let s = TreeStats::compute(&t);
        assert_eq!(s.num_users, 0);
        assert_eq!(s.max_depth, 0);
        assert_eq!(s.mean_depth, 0.0);
        assert_eq!(s.num_seeds, 0);
    }

    #[test]
    fn histogram_of_path_and_star() {
        assert_eq!(depth_histogram(&generate::path(3)), vec![1, 1, 1]);
        assert_eq!(depth_histogram(&generate::star(3)), vec![3]);
        assert!(depth_histogram(&IncentiveTree::platform_only()).is_empty());
    }

    #[test]
    fn histogram_sums_to_user_count() {
        let mut rng = rand::rngs::mock::StepRng::new(7, 11);
        let t = generate::uniform_recursive(200, &mut rng);
        let h = depth_histogram(&t);
        assert_eq!(h.iter().sum::<usize>(), 200);
    }
}
