//! The §3-B sybil-attack transformation.
//!
//! A sybil attack by user `Pⱼ` replaces `Pⱼ`'s node with `δ(j) > 1` fake
//! identities `Pⱼ₁ … Pⱼ_δ`. By the paper's technical convention (Remark 3.1,
//! shared with the incentive-tree literature it cites):
//!
//! * each identity is attached either to `Pⱼ`'s original parent or to
//!   another identity of `Pⱼ` (other users never reached out to `Pⱼ`'s
//!   identities during solicitation);
//! * each original child of `Pⱼ` is re-homed under one of the identities;
//! * the rest of the tree is unchanged.
//!
//! Lemma 6.4 decomposes any such attack into "simpler" splits of one
//! identity into two — either stacked (one becomes the parent of the other,
//! Fig 4) or as siblings (Fig 5). [`IdentityArrangement::Chain`] and
//! [`IdentityArrangement::Star`] are the pure forms of those two moves;
//! [`IdentityArrangement::Random`] mixes them, which is how the Fig 9
//! experiment generates attacks ("let `P₂₉` randomly generate the
//! identities").

use rand::Rng;

use crate::{IncentiveTree, NodeId, TreeError};

/// How the fake identities attach to each other and to the victim's parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IdentityArrangement {
    /// A path: identity 1 is a child of the original parent, identity `l+1`
    /// a child of identity `l` (the Fig 4 "stacked" attack, the profitable
    /// one against naive referral schemes).
    Chain,
    /// All identities are siblings under the original parent (Fig 5).
    Star,
    /// Each identity independently picks the original parent or any earlier
    /// identity, uniformly at random.
    Random,
    /// A complete `k`-ary hierarchy of identities under the original parent
    /// (breadth-first filling) — the attack shape that spreads identities
    /// across several shallow levels at once.
    Balanced {
        /// Children per identity in the hierarchy.
        arity: usize,
    },
}

/// How the victim's original children are re-homed among the identities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChildAssignment {
    /// All original children attach to the first identity.
    AllToFirst,
    /// All original children attach to the last identity (deepest in a
    /// chain — maximizes depth inflation of the original subtree).
    AllToLast,
    /// Children are spread round-robin over the identities.
    RoundRobin,
    /// Each child picks an identity uniformly at random.
    Random,
}

/// A sybil attack description: how many identities and how they arrange.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SybilPlan {
    /// Number of identities `δ(j) ≥ 2`.
    pub num_identities: usize,
    /// Identity topology.
    pub arrangement: IdentityArrangement,
    /// Re-homing rule for original children.
    pub child_assignment: ChildAssignment,
}

impl SybilPlan {
    /// A chain of `delta` identities with children moved to the deepest one —
    /// the attack shape that maximally demotes honest descendants.
    #[must_use]
    pub const fn chain(delta: usize) -> Self {
        Self {
            num_identities: delta,
            arrangement: IdentityArrangement::Chain,
            child_assignment: ChildAssignment::AllToLast,
        }
    }

    /// A star of `delta` sibling identities, children on the first.
    #[must_use]
    pub const fn star(delta: usize) -> Self {
        Self {
            num_identities: delta,
            arrangement: IdentityArrangement::Star,
            child_assignment: ChildAssignment::AllToFirst,
        }
    }

    /// A uniformly random arrangement with `delta` identities (the Fig 9
    /// attack generator).
    #[must_use]
    pub const fn random(delta: usize) -> Self {
        Self {
            num_identities: delta,
            arrangement: IdentityArrangement::Random,
            child_assignment: ChildAssignment::Random,
        }
    }
}

/// Result of applying a [`SybilPlan`].
///
/// Node ids of all non-victim nodes are preserved; the victim's old id
/// becomes the first identity, and the remaining `δ − 1` identities are
/// appended at the end of the arena.
#[derive(Clone, Debug)]
pub struct SybilOutcome {
    /// The transformed tree.
    pub tree: IncentiveTree,
    /// The identity nodes, in creation order. `identities[0]` reuses the
    /// victim's original id.
    pub identities: Vec<NodeId>,
}

/// Applies a sybil attack to `tree`.
///
/// ```
/// use rand::SeedableRng;
/// use rit_tree::sybil::{apply, SybilPlan};
/// use rit_tree::{generate, NodeId};
///
/// // P2 (a leaf of a 3-user chain) splits into a chain of 2 identities.
/// let tree = generate::path(3);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let out = apply(&SybilPlan::chain(2), &tree, NodeId::new(3), &mut rng)?;
/// assert_eq!(out.tree.num_users(), 4);
/// assert_eq!(out.identities.len(), 2);
/// # Ok::<(), rit_tree::TreeError>(())
/// ```
///
/// # Errors
///
/// * [`TreeError::CannotAttackRoot`] if `victim` is the platform root;
/// * [`TreeError::NodeOutOfRange`] if `victim` is not in the tree;
/// * [`TreeError::TooFewIdentities`] if the plan has `δ < 2`.
pub fn apply<R: Rng + ?Sized>(
    plan: &SybilPlan,
    tree: &IncentiveTree,
    victim: NodeId,
    rng: &mut R,
) -> Result<SybilOutcome, TreeError> {
    if victim.is_root() {
        return Err(TreeError::CannotAttackRoot);
    }
    if victim.index() >= tree.num_nodes() {
        return Err(TreeError::NodeOutOfRange {
            node: victim.index(),
            num_nodes: tree.num_nodes(),
        });
    }
    if plan.num_identities < 2 {
        return Err(TreeError::TooFewIdentities {
            requested: plan.num_identities,
        });
    }

    let delta = plan.num_identities;
    let old_n = tree.num_nodes();
    let victim_parent = tree
        .parent(victim)
        .expect("non-root node always has a parent");

    // Identity ids: the victim's slot plus δ−1 appended slots.
    let mut identities = Vec::with_capacity(delta);
    identities.push(victim);
    for l in 0..delta - 1 {
        identities.push(NodeId::new((old_n + l) as u32));
    }

    // New parent vector, indexed by node id − 1.
    let mut parents: Vec<NodeId> = vec![NodeId::ROOT; old_n - 1 + (delta - 1)];
    for node in tree.user_nodes() {
        let p = tree.parent(node).expect("user nodes have parents");
        if node == victim {
            continue; // set below as identities[0]
        }
        parents[node.index() - 1] = if p == victim {
            assign_child(plan.child_assignment, &identities, node, rng)
        } else {
            p
        };
    }

    // Identity attachment.
    parents[victim.index() - 1] = victim_parent;
    for l in 1..delta {
        let parent = match plan.arrangement {
            IdentityArrangement::Chain => identities[l - 1],
            IdentityArrangement::Star => victim_parent,
            IdentityArrangement::Random => {
                // Uniform over {victim's parent} ∪ {identities[0..l]}.
                let pick = rng.gen_range(0..=l);
                if pick == 0 {
                    victim_parent
                } else {
                    identities[pick - 1]
                }
            }
            IdentityArrangement::Balanced { arity } => {
                assert!(arity > 0, "balanced arity must be positive");
                // Breadth-first: identity l hangs under identity (l−1)/arity.
                identities[(l - 1) / arity]
            }
        };
        parents[identities[l].index() - 1] = parent;
    }

    let tree = IncentiveTree::from_parents(&parents)?;
    Ok(SybilOutcome { tree, identities })
}

fn assign_child<R: Rng + ?Sized>(
    rule: ChildAssignment,
    identities: &[NodeId],
    child: NodeId,
    rng: &mut R,
) -> NodeId {
    match rule {
        ChildAssignment::AllToFirst => identities[0],
        ChildAssignment::AllToLast => *identities.last().expect("δ ≥ 2"),
        ChildAssignment::RoundRobin => identities[child.index() % identities.len()],
        ChildAssignment::Random => identities[rng.gen_range(0..identities.len())],
    }
}

/// Splits a total claimed quantity into `parts` positive integers summing to
/// `total` — how an attacker divides its capacity `Kⱼ` among identities
/// (each identity must claim at least one task, which is why `Pⱼ` can create
/// at most `Kⱼ` identities).
///
/// Uses a uniform random composition (stars and bars).
///
/// # Panics
///
/// Panics if `parts == 0` or `total < parts`.
pub fn split_quantity<R: Rng + ?Sized>(total: u64, parts: usize, rng: &mut R) -> Vec<u64> {
    assert!(parts > 0, "cannot split into zero parts");
    assert!(
        total >= parts as u64,
        "cannot split {total} into {parts} positive parts"
    );
    // Choose parts−1 distinct cut points in 1..total.
    let mut cuts: Vec<u64> = Vec::with_capacity(parts - 1);
    while cuts.len() < parts - 1 {
        let c = rng.gen_range(1..total);
        if !cuts.contains(&c) {
            cuts.push(c);
        }
    }
    cuts.sort_unstable();
    let mut out = Vec::with_capacity(parts);
    let mut prev = 0;
    for &c in &cuts {
        out.push(c - prev);
        prev = c;
    }
    out.push(total - prev);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// root ─ 1 ─ 2 ─ {3, 4}
    ///      └ 5
    fn sample() -> IncentiveTree {
        IncentiveTree::from_parents(&[
            NodeId::ROOT,
            NodeId::new(1),
            NodeId::new(2),
            NodeId::new(2),
            NodeId::ROOT,
        ])
        .unwrap()
    }

    #[test]
    fn chain_attack_matches_fig4() {
        // P2 splits into a chain of 2; children go under the deepest identity.
        let t = sample();
        let mut rng = SmallRng::seed_from_u64(1);
        let out = apply(&SybilPlan::chain(2), &t, NodeId::new(2), &mut rng).unwrap();
        let nt = &out.tree;
        assert_eq!(nt.num_users(), 6);
        let id0 = out.identities[0];
        let id1 = out.identities[1];
        assert_eq!(id0, NodeId::new(2));
        assert_eq!(nt.parent(id0), Some(NodeId::new(1)));
        assert_eq!(nt.parent(id1), Some(id0));
        // Original children 3 and 4 now hang under id1, one level deeper.
        assert_eq!(nt.parent(NodeId::new(3)), Some(id1));
        assert_eq!(nt.parent(NodeId::new(4)), Some(id1));
        assert_eq!(nt.depth(NodeId::new(3)), t.depth(NodeId::new(3)) + 1);
    }

    #[test]
    fn star_attack_matches_fig5() {
        let t = sample();
        let mut rng = SmallRng::seed_from_u64(1);
        let out = apply(&SybilPlan::star(3), &t, NodeId::new(2), &mut rng).unwrap();
        let nt = &out.tree;
        for &id in &out.identities {
            assert_eq!(nt.parent(id), Some(NodeId::new(1)));
        }
        // Children keep their original depth: siblings don't add levels.
        assert_eq!(nt.depth(NodeId::new(3)), t.depth(NodeId::new(3)));
        assert_eq!(nt.parent(NodeId::new(3)), Some(out.identities[0]));
    }

    #[test]
    fn random_attack_respects_attachment_rule() {
        let t = sample();
        for seed in 0..50 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let out = apply(&SybilPlan::random(4), &t, NodeId::new(2), &mut rng).unwrap();
            let nt = &out.tree;
            let victim_parent = NodeId::new(1);
            for (l, &id) in out.identities.iter().enumerate() {
                let p = nt.parent(id).unwrap();
                let valid = p == victim_parent || out.identities[..l].contains(&p);
                assert!(valid, "identity {id} attached to invalid parent {p}");
            }
            // Original children must hang under some identity.
            for c in [NodeId::new(3), NodeId::new(4)] {
                assert!(out.identities.contains(&nt.parent(c).unwrap()));
            }
            // Untouched branch unchanged.
            assert_eq!(nt.parent(NodeId::new(5)), Some(NodeId::ROOT));
            assert_eq!(nt.parent(NodeId::new(1)), Some(NodeId::ROOT));
        }
    }

    #[test]
    fn balanced_attack_builds_a_bfs_hierarchy() {
        let t = sample();
        let mut rng = SmallRng::seed_from_u64(2);
        let plan = SybilPlan {
            num_identities: 6,
            arrangement: IdentityArrangement::Balanced { arity: 2 },
            child_assignment: ChildAssignment::RoundRobin,
        };
        let out = apply(&plan, &t, NodeId::new(2), &mut rng).unwrap();
        let nt = &out.tree;
        let ids = &out.identities;
        // Identity 0 under the original parent; 1,2 under 0; 3,4 under 1; 5 under 2.
        assert_eq!(nt.parent(ids[0]), Some(NodeId::new(1)));
        assert_eq!(nt.parent(ids[1]), Some(ids[0]));
        assert_eq!(nt.parent(ids[2]), Some(ids[0]));
        assert_eq!(nt.parent(ids[3]), Some(ids[1]));
        assert_eq!(nt.parent(ids[4]), Some(ids[1]));
        assert_eq!(nt.parent(ids[5]), Some(ids[2]));
        // Every identity holds at most `arity` identity children.
        for &id in ids {
            let identity_children = nt.children(id).iter().filter(|c| ids.contains(c)).count();
            assert!(identity_children <= 2);
        }
    }

    #[test]
    fn attack_preserves_other_subtree_shape() {
        let t = sample();
        let mut rng = SmallRng::seed_from_u64(9);
        let out = apply(&SybilPlan::chain(3), &t, NodeId::new(5), &mut rng).unwrap();
        // Victim 5 is a leaf: nothing else should move.
        for node in [1u32, 2, 3, 4] {
            let node = NodeId::new(node);
            assert_eq!(out.tree.parent(node), t.parent(node));
            assert_eq!(out.tree.depth(node), t.depth(node));
        }
    }

    #[test]
    fn errors() {
        let t = sample();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            apply(&SybilPlan::star(2), &t, NodeId::ROOT, &mut rng).unwrap_err(),
            TreeError::CannotAttackRoot
        );
        assert!(matches!(
            apply(&SybilPlan::star(2), &t, NodeId::new(99), &mut rng).unwrap_err(),
            TreeError::NodeOutOfRange { .. }
        ));
        assert!(matches!(
            apply(&SybilPlan::star(1), &t, NodeId::new(1), &mut rng).unwrap_err(),
            TreeError::TooFewIdentities { requested: 1 }
        ));
    }

    #[test]
    fn split_quantity_sums_and_is_positive() {
        let mut rng = SmallRng::seed_from_u64(7);
        for total in [2u64, 5, 17, 100] {
            for parts in 1..=total.min(10) as usize {
                let split = split_quantity(total, parts, &mut rng);
                assert_eq!(split.len(), parts);
                assert_eq!(split.iter().sum::<u64>(), total);
                assert!(split.iter().all(|&s| s >= 1));
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive parts")]
    fn split_quantity_rejects_too_many_parts() {
        let mut rng = SmallRng::seed_from_u64(7);
        split_quantity(3, 4, &mut rng);
    }

    #[test]
    fn round_robin_assignment_spreads_children() {
        // Victim 1 with 4 children 2,3,4,5.
        let t = IncentiveTree::from_parents(&[
            NodeId::ROOT,
            NodeId::new(1),
            NodeId::new(1),
            NodeId::new(1),
            NodeId::new(1),
        ])
        .unwrap();
        let plan = SybilPlan {
            num_identities: 2,
            arrangement: IdentityArrangement::Star,
            child_assignment: ChildAssignment::RoundRobin,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let out = apply(&plan, &t, NodeId::new(1), &mut rng).unwrap();
        let mut counts = [0usize; 2];
        for c in [2u32, 3, 4, 5] {
            let p = out.tree.parent(NodeId::new(c)).unwrap();
            let idx = out.identities.iter().position(|&i| i == p).unwrap();
            counts[idx] += 1;
        }
        assert_eq!(counts, [2, 2]);
    }
}
