//! Traversal iterators over [`IncentiveTree`].

use crate::{IncentiveTree, NodeId};

/// Iterator over the strict descendants of a node (the paper's `Tⱼ`), in
/// preorder. Produced by [`IncentiveTree::descendants`].
///
/// Because the tree stores an Euler tour, the subtree of `v` occupies the
/// contiguous preorder range `entry(v)+1 .. exit(v)`, so iteration is a
/// simple slice walk — no stack, no allocation.
#[derive(Clone, Debug)]
pub struct Descendants<'a> {
    slice: std::slice::Iter<'a, NodeId>,
}

impl<'a> Descendants<'a> {
    pub(crate) fn new(tree: &'a IncentiveTree, node: NodeId) -> Self {
        let start = tree.entry_time(node) + 1;
        let end = tree.exit_time(node);
        Self {
            slice: tree.preorder()[start..end].iter(),
        }
    }
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        self.slice.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.slice.size_hint()
    }
}

impl ExactSizeIterator for Descendants<'_> {}

/// Iterator over the strict ancestors of a node, from its parent up to and
/// including the platform root. Produced by [`IncentiveTree::ancestors`].
#[derive(Clone, Debug)]
pub struct Ancestors<'a> {
    tree: &'a IncentiveTree,
    current: Option<NodeId>,
}

impl<'a> Ancestors<'a> {
    pub(crate) fn new(tree: &'a IncentiveTree, node: NodeId) -> Self {
        Self {
            tree,
            current: tree.parent(node),
        }
    }
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.current?;
        self.current = self.tree.parent(node);
        Some(node)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.current {
            None => (0, Some(0)),
            Some(n) => {
                let d = self.tree.depth(n) as usize + 1;
                (d, Some(d))
            }
        }
    }
}

impl ExactSizeIterator for Ancestors<'_> {}

#[cfg(test)]
mod tests {
    use crate::{IncentiveTree, NodeId};

    fn chain(n: u32) -> IncentiveTree {
        let parents: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        IncentiveTree::from_parents(&parents).unwrap()
    }

    #[test]
    fn descendants_len_matches_subtree() {
        let t = chain(10);
        let d = t.descendants(NodeId::new(3));
        assert_eq!(d.len(), 7);
        assert_eq!(d.count(), 7);
    }

    #[test]
    fn descendants_preorder_on_branching_tree() {
        // root ─ 1 ─ {2 ─ 4, 3}
        let t = IncentiveTree::from_parents(&[
            NodeId::ROOT,
            NodeId::new(1),
            NodeId::new(1),
            NodeId::new(2),
        ])
        .unwrap();
        let d: Vec<NodeId> = t.descendants(NodeId::new(1)).collect();
        assert_eq!(d, vec![NodeId::new(2), NodeId::new(4), NodeId::new(3)]);
    }

    #[test]
    fn ancestors_size_hint_exact() {
        let t = chain(5);
        let a = t.ancestors(NodeId::new(5));
        assert_eq!(a.len(), 5);
        let collected: Vec<NodeId> = a.collect();
        assert_eq!(collected.last(), Some(&NodeId::ROOT));
    }

    #[test]
    fn leaf_has_no_descendants() {
        let t = chain(3);
        assert_eq!(t.descendants(NodeId::new(3)).len(), 0);
    }
}
