//! Arena representation of the incentive tree.

use std::fmt;

use crate::{Ancestors, Descendants, TreeError};

/// Identifier of a node in an [`IncentiveTree`].
///
/// Node 0 is always the crowdsensing platform (the root); nodes `1 ‥ N` are
/// the solicitation participants, in join order. After a sybil attack extra
/// identity nodes are appended at the end.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The platform root.
    pub const ROOT: NodeId = NodeId(0);

    /// Creates a node id from its index (0 = platform root).
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// The node's index within the tree arena.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the platform root.
    #[must_use]
    pub const fn is_root(self) -> bool {
        self.0 == 0
    }

    /// The zero-based *user* index for a non-root node: node `i` (i ≥ 1)
    /// corresponds to user `i − 1` in ask/payment vectors.
    ///
    /// Returns `None` for the root, which is not a user.
    #[must_use]
    pub const fn user_index(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 as usize - 1)
        }
    }

    /// The node corresponding to the zero-based user index `user`.
    #[must_use]
    pub const fn from_user_index(user: usize) -> Self {
        Self(user as u32 + 1)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return f.pad("root");
        }
        // "P" + decimal digits, composed on the stack: node labels are
        // printed per node in traces and DOT dumps, so `Display` must not
        // heap-allocate. 1 byte prefix + at most 10 digits of u32.
        let mut buf = [0u8; 11];
        buf[0] = b'P';
        let mut end = buf.len();
        let mut v = self.0;
        loop {
            end -= 1;
            buf[end] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        buf.copy_within(end.., 1);
        let len = 1 + buf.len() - end;
        let s = core::str::from_utf8(&buf[..len]).expect("ASCII digits");
        f.pad(s)
    }
}

/// An immutable incentive tree `T` over the platform root and `N` users.
///
/// Internally an arena: parent pointers, contiguously stored children lists,
/// per-node depth `rⱼ` (distance to the root, root = 0), and an Euler tour
/// (preorder entry/exit times) supporting O(1) ancestor queries and the O(N)
/// subtree-aggregation pass used by the payment-determination phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IncentiveTree {
    parent: Vec<u32>,        // parent[0] == 0 (self-loop, never read for root)
    depth: Vec<u32>,         // depth[0] == 0
    child_start: Vec<u32>,   // CSR offsets into `child_list`, len = n + 1
    child_list: Vec<NodeId>, // children of node i: child_list[start[i]..start[i+1]]
    entry: Vec<u32>,         // Euler entry time (preorder index)
    exit: Vec<u32>,          // Euler exit time: entry..exit covers the subtree
    preorder: Vec<NodeId>,   // preorder[entry[v]] == v
}

impl IncentiveTree {
    /// Builds a tree from parent pointers: `parents[i]` is the parent of node
    /// `i + 1` (node 0, the root, has no entry).
    ///
    /// Forward references are allowed (a node's parent may have a larger
    /// index), which arises naturally after sybil transformations.
    ///
    /// # Errors
    ///
    /// * [`TreeError::ParentOutOfRange`] if a parent index exceeds the arena;
    /// * [`TreeError::CycleDetected`] if some node cannot reach the root.
    pub fn from_parents(parents: &[NodeId]) -> Result<Self, TreeError> {
        let n = parents.len() + 1;
        let mut parent = vec![0u32; n];
        for (i, p) in parents.iter().enumerate() {
            if p.index() >= n {
                return Err(TreeError::ParentOutOfRange {
                    node: i + 1,
                    parent: p.index(),
                    num_nodes: n,
                });
            }
            parent[i + 1] = p.0;
        }

        // Children in CSR form (counting sort keeps child order stable by id).
        let mut counts = vec![0u32; n];
        for &p in &parent[1..] {
            counts[p as usize] += 1;
        }
        let mut child_start = vec![0u32; n + 1];
        for i in 0..n {
            child_start[i + 1] = child_start[i] + counts[i];
        }
        let mut cursor = child_start.clone();
        let mut child_list = vec![NodeId(0); n - 1];
        // Index loop: `i` addresses `parent` while `cursor` walks the CSR.
        #[allow(clippy::needless_range_loop)]
        for i in 1..n {
            let p = parent[i] as usize;
            child_list[cursor[p] as usize] = NodeId(i as u32);
            cursor[p] += 1;
        }

        // Depth + Euler tour via iterative preorder DFS from the root.
        let mut depth = vec![u32::MAX; n];
        let mut entry = vec![0u32; n];
        let mut exit = vec![0u32; n];
        let mut preorder = Vec::with_capacity(n);
        depth[0] = 0;
        let mut time = 0u32;
        // Stack holds (node, next-child cursor within its CSR range).
        let mut stack: Vec<(u32, u32)> = vec![(0, child_start[0])];
        entry[0] = 0;
        preorder.push(NodeId(0));
        time += 1;
        while let Some(&mut (v, ref mut cur)) = stack.last_mut() {
            let v = v as usize;
            if *cur < child_start[v + 1] {
                let c = child_list[*cur as usize];
                *cur += 1;
                depth[c.index()] = depth[v] + 1;
                entry[c.index()] = time;
                preorder.push(c);
                time += 1;
                stack.push((c.0, child_start[c.index()]));
            } else {
                exit[v] = time;
                stack.pop();
            }
        }
        // Any node never reached lies on a cycle (or below one).
        if let Some(node) = depth.iter().position(|&d| d == u32::MAX) {
            return Err(TreeError::CycleDetected { node });
        }

        Ok(Self {
            parent,
            depth,
            child_start,
            child_list,
            entry,
            exit,
            preorder,
        })
    }

    /// A tree with only the platform root and no users.
    #[must_use]
    pub fn platform_only() -> Self {
        Self::from_parents(&[]).expect("empty parent list is always valid")
    }

    /// The platform root.
    #[must_use]
    pub const fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Total node count, including the platform root.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Number of user nodes `N` (everything but the root).
    #[must_use]
    pub fn num_users(&self) -> usize {
        self.parent.len() - 1
    }

    /// The parent of `node`, or `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        assert!(node.index() < self.num_nodes(), "node out of range");
        if node.is_root() {
            None
        } else {
            Some(NodeId(self.parent[node.index()]))
        }
    }

    /// The depth `rⱼ` of `node`: its distance to the platform root
    /// (root = 0, the paper's "users who join at the very beginning" = 1).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn depth(&self, node: NodeId) -> u32 {
        self.depth[node.index()]
    }

    /// The children of `node`, in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        &self.child_list[self.child_start[i] as usize..self.child_start[i + 1] as usize]
    }

    /// Number of nodes in the subtree rooted at `node`, **including** `node`.
    #[must_use]
    pub fn subtree_size(&self, node: NodeId) -> usize {
        (self.exit[node.index()] - self.entry[node.index()]) as usize
    }

    /// Whether `ancestor` is a (strict or non-strict) ancestor of `node`.
    /// O(1) via Euler tour times. `is_ancestor(v, v)` is `true`.
    #[must_use]
    pub fn is_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        self.entry[ancestor.index()] <= self.entry[node.index()]
            && self.entry[node.index()] < self.exit[ancestor.index()]
    }

    /// Iterates over the **strict** descendants of `node` (the paper's `Tⱼ`),
    /// in preorder.
    #[must_use]
    pub fn descendants(&self, node: NodeId) -> Descendants<'_> {
        Descendants::new(self, node)
    }

    /// Iterates over the strict ancestors of `node`, from parent up to (and
    /// including) the root.
    #[must_use]
    pub fn ancestors(&self, node: NodeId) -> Ancestors<'_> {
        Ancestors::new(self, node)
    }

    /// The full preorder traversal starting at the root.
    #[must_use]
    pub fn preorder(&self) -> &[NodeId] {
        &self.preorder
    }

    /// Euler entry time of `node` (its preorder index).
    #[must_use]
    pub fn entry_time(&self, node: NodeId) -> usize {
        self.entry[node.index()] as usize
    }

    /// Euler exit time of `node`: the subtree of `node` occupies preorder
    /// slots `entry_time(node) .. exit_time(node)`.
    #[must_use]
    pub fn exit_time(&self, node: NodeId) -> usize {
        self.exit[node.index()] as usize
    }

    /// Iterates over all user nodes `P₁ ‥ P_N` in id order.
    pub fn user_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..self.num_nodes() as u32).map(NodeId)
    }

    /// The parent-pointer vector (`parents[i]` = parent of node `i + 1`),
    /// suitable for [`IncentiveTree::from_parents`] round trips.
    #[must_use]
    pub fn to_parents(&self) -> Vec<NodeId> {
        self.parent[1..].iter().map(|&p| NodeId(p)).collect()
    }
}

/// Incremental builder: nodes are appended one at a time under an existing
/// parent, mirroring how solicitation grows the tree over time.
///
/// ```
/// use rit_tree::{IncentiveTreeBuilder, NodeId};
///
/// let mut b = IncentiveTreeBuilder::new();
/// let a = b.add_child(NodeId::ROOT);
/// let _b2 = b.add_child(a);
/// let tree = b.build();
/// assert_eq!(tree.num_users(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct IncentiveTreeBuilder {
    parents: Vec<NodeId>,
}

impl IncentiveTreeBuilder {
    /// Creates a builder with only the platform root.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder expecting roughly `n` users.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            parents: Vec::with_capacity(n),
        }
    }

    /// Number of nodes added so far (excluding the root).
    #[must_use]
    pub fn num_users(&self) -> usize {
        self.parents.len()
    }

    /// Adds a new node as a child of `parent`, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not exist yet.
    pub fn add_child(&mut self, parent: NodeId) -> NodeId {
        assert!(
            parent.index() <= self.parents.len(),
            "parent {parent} does not exist yet"
        );
        self.parents.push(parent);
        NodeId::new(self.parents.len() as u32)
    }

    /// Finalizes the tree.
    #[must_use]
    pub fn build(self) -> IncentiveTree {
        IncentiveTree::from_parents(&self.parents)
            .expect("builder maintains the parent-exists invariant")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_display_formats_and_pads() {
        assert_eq!(NodeId::ROOT.to_string(), "root");
        assert_eq!(NodeId::new(1).to_string(), "P1");
        assert_eq!(NodeId::new(42).to_string(), "P42");
        assert_eq!(NodeId::new(u32::MAX).to_string(), "P4294967295");
        // Width/alignment flags must keep working through `f.pad`.
        assert_eq!(format!("{:>6}", NodeId::new(7)), "    P7");
        assert_eq!(format!("{:<6}|", NodeId::new(123)), "P123  |");
        assert_eq!(format!("{:^6}", NodeId::ROOT), " root ");
    }

    /// root ─ 1 ─ 2 ─ 4
    ///      │    └ 3
    ///      └ 5
    fn sample() -> IncentiveTree {
        IncentiveTree::from_parents(&[
            NodeId::ROOT,
            NodeId::new(1),
            NodeId::new(2),
            NodeId::new(2),
            NodeId::ROOT,
        ])
        .unwrap()
    }

    #[test]
    fn basic_shape() {
        let t = sample();
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.num_users(), 5);
        assert_eq!(t.children(NodeId::ROOT), &[NodeId::new(1), NodeId::new(5)]);
        assert_eq!(
            t.children(NodeId::new(2)),
            &[NodeId::new(3), NodeId::new(4)]
        );
        assert_eq!(t.parent(NodeId::new(4)), Some(NodeId::new(2)));
        assert_eq!(t.parent(NodeId::ROOT), None);
    }

    #[test]
    fn depths() {
        let t = sample();
        assert_eq!(t.depth(NodeId::ROOT), 0);
        assert_eq!(t.depth(NodeId::new(1)), 1);
        assert_eq!(t.depth(NodeId::new(2)), 2);
        assert_eq!(t.depth(NodeId::new(4)), 3);
        assert_eq!(t.depth(NodeId::new(5)), 1);
    }

    #[test]
    fn subtree_sizes_and_ancestry() {
        let t = sample();
        assert_eq!(t.subtree_size(NodeId::ROOT), 6);
        assert_eq!(t.subtree_size(NodeId::new(1)), 4);
        assert_eq!(t.subtree_size(NodeId::new(5)), 1);
        assert!(t.is_ancestor(NodeId::new(1), NodeId::new(4)));
        assert!(t.is_ancestor(NodeId::new(1), NodeId::new(1)));
        assert!(!t.is_ancestor(NodeId::new(2), NodeId::new(5)));
        assert!(!t.is_ancestor(NodeId::new(4), NodeId::new(1)));
    }

    #[test]
    fn descendants_exclude_self() {
        let t = sample();
        let d: Vec<NodeId> = t.descendants(NodeId::new(1)).collect();
        assert_eq!(d, vec![NodeId::new(2), NodeId::new(3), NodeId::new(4)]);
        assert_eq!(t.descendants(NodeId::new(5)).count(), 0);
        assert_eq!(t.descendants(NodeId::ROOT).count(), 5);
    }

    #[test]
    fn ancestors_walk_to_root() {
        let t = sample();
        let a: Vec<NodeId> = t.ancestors(NodeId::new(4)).collect();
        assert_eq!(a, vec![NodeId::new(2), NodeId::new(1), NodeId::ROOT]);
        assert_eq!(t.ancestors(NodeId::ROOT).count(), 0);
    }

    #[test]
    fn preorder_consistent_with_entry_times() {
        let t = sample();
        for v in t.preorder() {
            assert_eq!(t.preorder()[t.entry_time(*v)], *v);
        }
        assert_eq!(t.preorder().len(), t.num_nodes());
    }

    #[test]
    fn forward_parent_references_allowed() {
        // Node 1's parent is node 2 (a forward reference), node 2's is root.
        let t = IncentiveTree::from_parents(&[NodeId::new(2), NodeId::ROOT]).unwrap();
        assert_eq!(t.depth(NodeId::new(1)), 2);
        assert_eq!(t.depth(NodeId::new(2)), 1);
    }

    #[test]
    fn cycle_detected() {
        // 1 → 2, 2 → 1: unreachable from root.
        let r = IncentiveTree::from_parents(&[NodeId::new(2), NodeId::new(1)]);
        assert!(matches!(r, Err(TreeError::CycleDetected { .. })));
    }

    #[test]
    fn parent_out_of_range_rejected() {
        let r = IncentiveTree::from_parents(&[NodeId::new(9)]);
        assert!(matches!(r, Err(TreeError::ParentOutOfRange { .. })));
    }

    #[test]
    fn platform_only_tree() {
        let t = IncentiveTree::platform_only();
        assert_eq!(t.num_users(), 0);
        assert_eq!(t.subtree_size(NodeId::ROOT), 1);
        assert_eq!(t.user_nodes().count(), 0);
    }

    #[test]
    fn builder_round_trips_parents() {
        let t = sample();
        let rebuilt = IncentiveTree::from_parents(&t.to_parents()).unwrap();
        assert_eq!(t, rebuilt);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn builder_rejects_future_parent() {
        let mut b = IncentiveTreeBuilder::new();
        b.add_child(NodeId::new(5));
    }

    #[test]
    fn user_index_mapping() {
        assert_eq!(NodeId::ROOT.user_index(), None);
        assert_eq!(NodeId::new(1).user_index(), Some(0));
        assert_eq!(NodeId::from_user_index(0), NodeId::new(1));
        assert_eq!(NodeId::from_user_index(28).to_string(), "P29");
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 200k-node chain: recursion would blow the stack; our DFS is iterative.
        let n = 200_000u32;
        let parents: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let t = IncentiveTree::from_parents(&parents).unwrap();
        assert_eq!(t.depth(NodeId::new(n)), n);
        assert_eq!(t.subtree_size(NodeId::new(1)), n as usize);
    }
}
