//! Property-based tests of the incentive-tree invariants.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_tree::sybil::{self, SybilPlan};
use rit_tree::{IncentiveTree, NodeId};

/// Strategy: a random recursive tree described by its parent choices —
/// node `i + 1` attaches to a uniformly chosen earlier node.
fn arb_tree(max_users: usize) -> impl Strategy<Value = IncentiveTree> {
    prop::collection::vec(0u32..=u32::MAX, 1..max_users).prop_map(|choices| {
        let parents: Vec<NodeId> = choices
            .iter()
            .enumerate()
            .map(|(i, &c)| NodeId::new(c % (i as u32 + 1)))
            .collect();
        IncentiveTree::from_parents(&parents).expect("constructed parents are valid")
    })
}

proptest! {
    #[test]
    fn depth_equals_ancestor_count(tree in arb_tree(120)) {
        for u in tree.user_nodes() {
            prop_assert_eq!(tree.depth(u) as usize, tree.ancestors(u).count());
        }
    }

    #[test]
    fn subtree_sizes_are_consistent(tree in arb_tree(120)) {
        // Children subtree sizes + 1 == own subtree size.
        let all = std::iter::once(NodeId::ROOT).chain(tree.user_nodes());
        for v in all {
            let child_sum: usize = tree.children(v).iter().map(|&c| tree.subtree_size(c)).sum();
            prop_assert_eq!(tree.subtree_size(v), child_sum + 1);
            prop_assert_eq!(tree.subtree_size(v), tree.descendants(v).count() + 1);
        }
    }

    #[test]
    fn euler_ancestor_test_matches_walk(tree in arb_tree(80)) {
        for u in tree.user_nodes() {
            for v in tree.user_nodes() {
                let by_walk = u == v || tree.ancestors(v).any(|a| a == u);
                prop_assert_eq!(tree.is_ancestor(u, v), by_walk);
            }
        }
    }

    #[test]
    fn parents_round_trip(tree in arb_tree(120)) {
        let rebuilt = IncentiveTree::from_parents(&tree.to_parents()).unwrap();
        prop_assert_eq!(&tree, &rebuilt);
    }

    #[test]
    fn preorder_is_a_permutation(tree in arb_tree(120)) {
        let mut seen = vec![false; tree.num_nodes()];
        for v in tree.preorder() {
            prop_assert!(!seen[v.index()], "duplicate node in preorder");
            seen[v.index()] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sybil_attack_preserves_everyone_else(
        tree in arb_tree(60),
        victim_sel in 0usize..60,
        delta in 2usize..8,
        seed in any::<u64>(),
    ) {
        let n = tree.num_users();
        let victim = NodeId::from_user_index(victim_sel % n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = sybil::apply(&SybilPlan::random(delta), &tree, victim, &mut rng).unwrap();
        let nt = &out.tree;

        prop_assert_eq!(nt.num_users(), n + delta - 1);
        prop_assert_eq!(out.identities.len(), delta);

        // Every non-victim node keeps its id; parents only change for the
        // victim's original children, and those must point at an identity.
        for node in tree.user_nodes() {
            if node == victim {
                continue;
            }
            let old_parent = tree.parent(node).unwrap();
            let new_parent = nt.parent(node).unwrap();
            if old_parent == victim {
                prop_assert!(out.identities.contains(&new_parent));
            } else {
                prop_assert_eq!(new_parent, old_parent);
            }
        }

        // Identities form a connected "blob" hanging off the victim's old parent:
        // each identity's ancestors, after leaving the identity set, start at the
        // victim's original parent.
        let victim_parent = tree.parent(victim).unwrap();
        for &id in &out.identities {
            let mut walker = id;
            loop {
                let p = nt.parent(walker).unwrap();
                if out.identities.contains(&p) {
                    walker = p;
                } else {
                    prop_assert_eq!(p, victim_parent);
                    break;
                }
            }
        }

        // Depths of nodes outside the victim's subtree are unchanged.
        for node in tree.user_nodes() {
            if node != victim && !tree.is_ancestor(victim, node) {
                prop_assert_eq!(nt.depth(node), tree.depth(node));
            }
        }

        // Depths never decrease for the victim's original descendants
        // (identities can only insert levels, never remove them).
        for node in tree.descendants(victim) {
            prop_assert!(nt.depth(node) >= tree.depth(node));
        }
    }

    #[test]
    fn split_quantity_is_a_composition(total in 1u64..200, parts_sel in 1usize..20, seed in any::<u64>()) {
        let parts = 1 + parts_sel % (total as usize).min(19);
        let mut rng = SmallRng::seed_from_u64(seed);
        let split = sybil::split_quantity(total, parts, &mut rng);
        prop_assert_eq!(split.len(), parts);
        prop_assert_eq!(split.iter().sum::<u64>(), total);
        prop_assert!(split.iter().all(|&x| x >= 1));
    }
}
