#!/usr/bin/env sh
# Typecheck/lint/test the workspace in a registry-less container by patching
# the external deps with the API stubs in devtools/offline-stubs/.
#
# Usage:
#   devtools/check-offline.sh                 # cargo check --all-targets
#   devtools/check-offline.sh test -q         # cargo test -q
#   devtools/check-offline.sh clippy -- -D warnings
set -eu

cd "$(dirname "$0")/.."

cmd="${1:-check}"
[ "$#" -gt 0 ] && shift

if [ "$cmd" = "check" ] && [ "$#" -eq 0 ]; then
    set -- --all-targets
fi

exec cargo "$cmd" --offline --workspace \
    --config 'patch.crates-io.rand.path="devtools/offline-stubs/rand"' \
    --config 'patch.crates-io.crossbeam.path="devtools/offline-stubs/crossbeam"' \
    --config 'patch.crates-io.proptest.path="devtools/offline-stubs/proptest"' \
    --config 'patch.crates-io.criterion.path="devtools/offline-stubs/criterion"' \
    "$@"
