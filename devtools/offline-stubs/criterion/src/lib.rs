//! Offline API stub of `criterion` 0.5.
//!
//! Exists so `cargo check --all-targets` can typecheck the bench crate in a
//! container with no crates.io access (see `devtools/offline-stubs/README.md`).
//! It mirrors the subset this repo's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` / `criterion_main!`
//! macros — but performs **no measurement**: each benchmark body is executed
//! once so the harness at least smoke-tests the benched code paths.

use std::fmt::Display;
use std::time::Duration;

/// Opaque value barrier (re-export of the std hint).
pub use std::hint::black_box;

/// Stub of `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a (stub) benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single (stub) benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let _ = id.into();
        f(&mut Bencher { _marker: std::marker::PhantomData });
        self
    }
}

/// Stub of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the intended sample count (ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Records the intended measurement time (ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Records the intended warm-up time (ignored).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Records throughput metadata (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs `f` once with a stub bencher.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let _ = id.into();
        f(&mut Bencher { _marker: std::marker::PhantomData });
        self
    }

    /// Runs `f` once with a stub bencher and the provided input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let _ = id;
        f(&mut Bencher { _marker: std::marker::PhantomData }, input);
        self
    }

    /// Closes the group.
    pub fn finish(self) {
        let _ = self.name;
    }
}

/// Stub of `criterion::Bencher`: runs the routine exactly once.
///
/// The lifetime mirrors real criterion's `Bencher<'a, M>`; the stub holds
/// no borrow.
pub struct Bencher<'a> {
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Executes `routine` once (real criterion samples it repeatedly).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
    }
}

/// Stub of `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    /// Rendered id, kept for Debug output.
    pub id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Stub of `criterion::Throughput`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Stub of `criterion_group!`: builds a `fn $group()` running each target
/// once against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Stub of `criterion_main!`: a `main` that invokes each group function.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
