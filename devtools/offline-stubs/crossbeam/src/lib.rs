//! Offline API stub of `crossbeam` 0.8 (scoped threads only).
//!
//! Exists so the workspace typechecks and smoke-runs in a container with no
//! crates.io access (see `devtools/offline-stubs/README.md`). The API mirrors
//! `crossbeam::scope` / `Scope::spawn` / `ScopedJoinHandle::join`, but the
//! execution model is **sequential**: each spawned closure runs to completion
//! at the `spawn` call site (panics are caught and surfaced by `join`).
//!
//! This is behaviorally adequate for this repo's usage — workers claim items
//! from a shared atomic counter, so a single "worker" draining all work is a
//! correct (if serial) schedule — but it provides no parallelism. Never
//! benchmark with this stub.

use std::any::Any;
use std::marker::PhantomData;

/// Stub of `crossbeam::thread` re-exports.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

/// Result type matching `std::thread::Result`.
pub type ThreadResult<T> = std::thread::Result<T>;

/// Scope handle passed to the `scope` closure (subset of
/// `crossbeam::thread::Scope`).
pub struct Scope<'env> {
    _marker: PhantomData<&'env ()>,
}

/// Handle to a "spawned" (already-completed) scoped task.
pub struct ScopedJoinHandle<'scope, T> {
    result: ThreadResult<T>,
    _marker: PhantomData<&'scope ()>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Returns the closure's result, or the payload of its panic.
    pub fn join(self) -> ThreadResult<T> {
        self.result
    }
}

impl<'env> Scope<'env> {
    /// Runs `f` immediately and returns a handle with its captured result.
    pub fn spawn<'scope, F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'env>) -> T + Send + 'env,
        T: Send + 'env,
    {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(self)));
        ScopedJoinHandle {
            result,
            _marker: PhantomData,
        }
    }
}

/// Stub of `crossbeam::scope`: runs `f` with a sequential [`Scope`].
///
/// # Errors
///
/// Never returns `Err` itself — spawned-closure panics surface through each
/// handle's `join`, and a panic escaping `f` propagates as a panic (unlike
/// real crossbeam, which would return it as `Err`). Fine for typechecking
/// and smoke runs.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let scope = Scope {
        _marker: PhantomData,
    };
    Ok(f(&scope))
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawned_closures_run_and_join() {
        let total = std::sync::atomic::AtomicUsize::new(0);
        let out = super::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    s.spawn(|_| {
                        total.fetch_add(i, std::sync::atomic::Ordering::SeqCst);
                        i * 2
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<usize>()
        })
        .expect("scope ok");
        assert_eq!(out, 12);
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 6);
    }

    #[test]
    fn panics_surface_via_join() {
        let caught = super::scope(|s| s.spawn(|_| panic!("boom")).join().is_err()).unwrap();
        assert!(caught);
    }
}
