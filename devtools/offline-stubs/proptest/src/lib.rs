//! Offline API stub of `proptest` 1.x.
//!
//! Exists so the workspace's property tests typecheck **and run** in a
//! container with no crates.io access (see `devtools/offline-stubs/README.md`).
//! It covers the subset this repo uses: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, `any::<T>()`, range strategies, tuple strategies,
//! `prop::collection::vec`, `Just`, and `Strategy::prop_map`.
//!
//! Differences from real proptest: cases are drawn from a fixed deterministic
//! generator (no failure persistence, no shrinking), and value distributions
//! differ — a property that real proptest would falsify may pass under the
//! stub (and vice versa for distribution-sensitive statistical properties).
//! CI with registry access runs real proptest; the stub is for offline
//! compile checks and smoke runs.

pub mod test_runner {
    //! Runner configuration and case-level error plumbing.

    /// Stub of `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property is exercised with.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Stub of `proptest::test_runner::TestCaseError`.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The drawn inputs were rejected by `prop_assume!`.
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with message.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// An input rejection with message.
        #[must_use]
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// Deterministic SplitMix64 generator used to drive strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator seeded from `seed`.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a over a test's name: gives each property its own seed stream.
    #[must_use]
    pub fn seed_for(test_name: &str, case: u64) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;

    /// Stub of `proptest::strategy::Strategy`: a samplable value source.
    /// (No shrinking — `sample` is the whole interface.)
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Stub of `proptest::strategy::Just`: always yields a clone of the value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `Strategy::prop_map` adapter.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// Numeric types usable as range-strategy bounds.
    pub trait RangeValue: Copy + PartialOrd {
        /// Uniform draw from `[low, high)`.
        fn draw(rng: &mut TestRng, low: Self, high: Self) -> Self;
        /// Uniform draw from `[low, high]`.
        fn draw_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self;
    }

    macro_rules! impl_range_value_int {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn draw(rng: &mut TestRng, low: Self, high: Self) -> Self {
                    assert!(low < high, "empty range strategy");
                    let span = (high as i128 - low as i128) as u128;
                    let pick = (rng.next_u64() as u128) % span;
                    (low as i128 + pick as i128) as $t
                }
                fn draw_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self {
                    assert!(low <= high, "empty range strategy");
                    let span = (high as i128 - low as i128) as u128 + 1;
                    let pick = (rng.next_u64() as u128) % span;
                    (low as i128 + pick as i128) as $t
                }
            }
        )*};
    }
    impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_value_float {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn draw(rng: &mut TestRng, low: Self, high: Self) -> Self {
                    assert!(low < high, "empty range strategy");
                    low + (rng.next_unit_f64() as $t) * (high - low)
                }
                fn draw_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self {
                    assert!(low <= high, "empty range strategy");
                    low + (rng.next_unit_f64() as $t) * (high - low)
                }
            }
        )*};
    }
    impl_range_value_float!(f32, f64);

    impl<T: RangeValue> Strategy for core::ops::Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::draw(rng, self.start, self.end)
        }
    }

    impl<T: RangeValue> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::draw_inclusive(rng, *self.start(), *self.end())
        }
    }

    /// String-literal strategies: real proptest treats `&str` as a regex and
    /// generates matching strings. The stub ignores the pattern and emits
    /// random printable-ish strings (with occasional whitespace/newlines) —
    /// adequate for the repo's parser never-panics properties.
    impl Strategy for str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let len = (rng.next_u64() % 64) as usize;
            (0..len)
                .map(|_| {
                    let draw = rng.next_u64();
                    match draw % 16 {
                        0 => '\n',
                        1 => ' ',
                        2 => ',',
                        3 => '.',
                        4 => '-',
                        _ => char::from(b' ' + (draw >> 8) as u8 % 95),
                    }
                })
                .collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a default full-range strategy.
    pub trait ArbitraryStub {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryStub for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryStub for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryStub for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric; real proptest also emits specials.
            (rng.next_unit_f64() - 0.5) * 2.0e6
        }
    }

    impl ArbitraryStub for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.next_unit_f64() - 0.5) * 2.0e6) as f32
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryStub> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Stub of `proptest::prelude::any`.
    #[must_use]
    pub fn any<T: ArbitraryStub>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Lengths accepted by [`vec`] (stub of `SizeRange` conversions).
    pub trait IntoSizeRange {
        /// `(min, max)` inclusive length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_len - self.min_len) as u64 + 1;
            let len = self.min_len + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Stub of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }
}

/// Stub of the `prop` namespace (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Stub of `proptest!`: declares each property as a plain `#[test]` running
/// `config.cases` deterministic cases (no shrinking, no persistence).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_stub_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_stub_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_stub_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::test_runner::TestRng::from_seed(
                        $crate::test_runner::seed_for(stringify!($name), case),
                    );
                    let outcome = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::sample(&($strat), &mut rng);
                        )*
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(())
                        | ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest stub: {} falsified at case {}: {}",
                                stringify!($name),
                                case,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Stub of `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Stub of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Stub of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left != right`\n  both: `{:?}`",
                    left
                ),
            ));
        }
    }};
}

/// Stub of `prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..100, 1u64..50).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(
            (lo, hi) in arb_pair(),
            xs in prop::collection::vec(0u32..10, 1..20),
            flip in any::<bool>(),
        ) {
            prop_assert!(lo < hi);
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assume!(flip || !flip);
            prop_assert_eq!(hi - lo >= 1, true);
        }
    }
}
