//! Offline API stub of `rand` 0.8.
//!
//! This crate exists so the workspace can be **typechecked and smoke-run in a
//! container with no crates.io access** (see `devtools/offline-stubs/README.md`).
//! It mirrors the subset of the `rand` 0.8 API surface this repository uses:
//! `Rng` (`gen`, `gen_range`, `gen_bool`), `SeedableRng::seed_from_u64`,
//! `rngs::SmallRng`, `rngs::mock::StepRng`, and `seq::SliceRandom::shuffle`.
//!
//! The generators are deterministic (SplitMix64 / xorshift) but their streams
//! are **not** the real `rand` streams: statistical assertions calibrated to
//! real `rand` output may differ under this stub. Use it for compile checks
//! and smoke runs only; never ship results produced with it.

/// Core randomness source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values drawable from a uniform "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}
impl StandardSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u16
    }
}
impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable as `gen_range` bounds.
pub trait UniformSample: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample(rng);
                low + unit * (high - low)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: UniformSample> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing randomness trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a standard-distribution value.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut s = state;
        for chunk in bytes.chunks_mut(8) {
            // SplitMix64 expansion of the u64 seed, as real rand does.
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, sb) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = sb;
            }
        }
        Self::from_seed(seed)
    }

    /// Builds the generator from another source of randomness.
    fn from_rng<R: RngCore>(rng: &mut R) -> Result<Self, core::convert::Infallible> {
        Ok(Self::seed_from_u64(rng.next_u64()))
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Stub of `rand::rngs::SmallRng`: xorshift64* over a SplitMix64-expanded
    /// seed. Deterministic, fast, **not** the real SmallRng stream.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
            for chunk in seed.chunks(8) {
                let mut bytes = [0u8; 8];
                bytes[..chunk.len()].copy_from_slice(chunk);
                state = state
                    .rotate_left(13)
                    .wrapping_mul(31)
                    .wrapping_add(u64::from_le_bytes(bytes));
            }
            // Never allow the all-zero xorshift fixed point.
            Self { state: state | 1 }
        }
    }

    pub mod mock {
        //! Mock generators for deterministic tests.

        use super::super::RngCore;

        /// Stub of `rand::rngs::mock::StepRng`: returns `initial`,
        /// `initial + increment`, …
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates the stepping generator.
            #[must_use]
            pub fn new(initial: u64, increment: u64) -> Self {
                Self {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }
}

pub mod seq {
    //! Sequence utilities (subset of `rand::seq`).

    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

/// Module alias mirroring `rand::distributions` far enough for imports.
pub mod distributions {
    pub use super::{SampleRange, StandardSample, UniformSample};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        assert_eq!(a.gen_range(0..100u64), b.gen_range(0..100u64));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.0..=2.0f64);
            assert!((-2.0..=2.0).contains(&y));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
