//! The DARPA Network Challenge referral scheme and its sybil hole (§1).
//!
//! The MIT team's 2009 strategy paid a balloon finder $2,000, the finder's
//! inviter $1,000, the inviter's inviter $500, … — brilliantly effective at
//! recruiting, but not sybil-proof: the paper's introduction walks through
//! Bob splitting himself into Bob₁/Bob₂ to pocket $3,000 while honest Alice
//! drops to $500. This example reproduces those numbers exactly, then shows
//! how RIT's depth-anchored `(1/2)^{rᵢ}` weights remove the incentive.
//!
//! ```sh
//! cargo run --example darpa_challenge
//! ```

use rit::core::payment;
use rit::darpa;
use rit::model::{Ask, TaskTypeId};
use rit::tree::{generate, IncentiveTree, NodeId};

fn main() {
    println!("== MIT DARPA scheme ==\n");

    // Honest: root ─ Alice ─ Bob(finder).
    let honest = generate::path(2);
    let p = darpa::referral_payments(&honest, &[0.0, 2000.0]);
    println!("honest:  Bob ${:.0}, Alice ${:.0}", p[1], p[0]);

    // Attack: root ─ Alice ─ Bob₂ ─ Bob₁(finder).
    let attacked = generate::path(3);
    let q = darpa::referral_payments(&attacked, &[0.0, 0.0, 2000.0]);
    println!(
        "attack:  Bob₁ ${:.0} + Bob₂ ${:.0} = ${:.0} for Bob, Alice ${:.0}",
        q[2],
        q[1],
        q[1] + q[2],
        q[0]
    );
    println!(
        "⇒ Bob gains ${:.0} by splitting; Alice loses ${:.0}\n",
        q[1] + q[2] - p[1],
        p[0] - q[0]
    );

    println!("== Same story under RIT's payment rule ==\n");
    // RIT weights a contributor by (1/2)^(its own depth), independent of who
    // sits between. Alice's reward from Bob's contribution only shrinks when
    // Bob *digs himself deeper* — and Bob's identities collect nothing extra
    // because an identity's "descendant" contribution is discounted by the
    // deeper depth it itself created.
    let tau_find = TaskTypeId::new(0);
    let tau_alice = TaskTypeId::new(1);
    let contribution = 2000.0;

    // Honest: Alice (τ1) at depth 1, Bob (τ0, contributes 2000) at depth 2.
    let honest_asks = vec![
        Ask::new(tau_alice, 1, 1.0).unwrap(),
        Ask::new(tau_find, 1, 1.0).unwrap(),
    ];
    let honest_pay = payment::determine_payments(&honest, &honest_asks, &[0.0, contribution]);
    println!(
        "honest:  Bob {:.0}, Alice {:.0} (= ¼·2000: Bob sits at depth 2)",
        honest_pay[1], honest_pay[0]
    );

    // Attack: Alice ─ Bob₂ ─ Bob₁(contributes 2000, now depth 3).
    let attack_asks = vec![
        Ask::new(tau_alice, 1, 1.0).unwrap(),
        Ask::new(tau_find, 1, 1.0).unwrap(),
        Ask::new(tau_find, 1, 1.0).unwrap(),
    ];
    let attack_pay =
        payment::determine_payments(&attacked, &attack_asks, &[0.0, 0.0, contribution]);
    let bob_total = attack_pay[1] + attack_pay[2];
    println!(
        "attack:  Bob₁ {:.0} + Bob₂ {:.0} = {:.0} for Bob, Alice {:.0}",
        attack_pay[2], attack_pay[1], bob_total, attack_pay[0]
    );
    println!(
        "⇒ Bob's split gains him {:.0} (Bob₂ earns nothing from Bob₁: same task type),",
        bob_total - honest_pay[1]
    );
    println!("  and had the types differed, Bob₁'s deeper depth would halve the share anyway.");

    // Quantify that last remark: suppose Bob's identities pretended to be of
    // different types (not allowed in the model, but the arithmetic is the
    // point): Bob₂ would collect (1/2)³·2000 = 250 while Bob₁'s own reward
    // is unchanged — but Alice's ALSO drops to 250, and Bob₂'s 250 comes at
    // the price of Bob₁ keeping depth 3 forever after. Splitting shuffles
    // shares downward; it never mints new money.
    let deep_example =
        IncentiveTree::from_parents(&[NodeId::ROOT, NodeId::new(1), NodeId::new(2)]).unwrap();
    let mixed_asks = vec![
        Ask::new(tau_alice, 1, 1.0).unwrap(),
        Ask::new(TaskTypeId::new(2), 1, 1.0).unwrap(),
        Ask::new(tau_find, 1, 1.0).unwrap(),
    ];
    let mixed = payment::determine_payments(&deep_example, &mixed_asks, &[0.0, 0.0, contribution]);
    println!(
        "  (cross-type illustration: middle identity {:.0}, Alice {:.0} — both ⅛·2000)",
        mixed[1], mixed[0]
    );
}
