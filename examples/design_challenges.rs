//! The §4 design challenges: why auctions and incentive trees cannot simply
//! be glued together.
//!
//! * **Fig 2** — a truthful auction (k-th lowest price) under a sybil-proof
//!   contribution tree loses its sybil-proofness: by splitting, an attacker
//!   manipulates the clearing price its other identity is paid.
//! * **Fig 3** — a sybil-proof incentive tree under a truthful auction loses
//!   its truthfulness: the tree reward more than doubles a manipulated
//!   auction payment, making underbidding profitable.
//!
//! ```sh
//! cargo run --example design_challenges
//! ```

use rit::model::{Ask, Job, TaskTypeId};
use rit::naive;
use rit::tree::{generate, IncentiveTree, NodeId};

fn t0() -> TaskTypeId {
    TaskTypeId::new(0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    fig2_sybil_breaks_naive()?;
    fig3_tree_breaks_truthfulness()?;
    Ok(())
}

/// Fig 2: three users selling type τ₀, two tasks wanted. P1 (cost 2,
/// capacity 2) is truthful; splitting into two identities with a price-
/// setting decoy raises the clearing price for the identity that still wins.
fn fig2_sybil_breaks_naive() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig 2: sybil attack on the naive combination ==\n");
    let job = Job::from_counts(vec![2])?;

    // Honest world: P1 ─ P2 ─ P3 under the platform.
    let tree = generate::path(3);
    let asks = vec![
        Ask::new(t0(), 2, 2.0)?, // P1: 2 tasks at cost 2
        Ask::new(t0(), 1, 3.0)?,
        Ask::new(t0(), 1, 5.0)?,
    ];
    let honest = naive::run(&job, &tree, &asks);
    let honest_utility = honest.utility(0, 2.0);
    println!(
        "honest:  P1 wins {} tasks, auction payment {:.2}, utility {:.2}",
        honest.allocation[0], honest.auction_payments[0], honest_utility
    );

    // Attack: P1 splits into P1a (1 task @ 2) and a price decoy P1b
    // (1 task @ 4.5). The decoy displaces P2 from the price position:
    // clearing price rises from 3 to 4.5 for the winning identity.
    let attacked_tree = IncentiveTree::from_parents(&[
        NodeId::ROOT,   // P1a (old P1 slot)
        NodeId::new(4), // P2 now hangs under the decoy
        NodeId::new(2), // P3 under P2 as before
        NodeId::new(1), // P1b, child of P1a
    ])
    .unwrap();
    let attacked_asks = vec![
        Ask::new(t0(), 1, 2.0)?, // P1a
        Ask::new(t0(), 1, 3.0)?, // P2
        Ask::new(t0(), 1, 5.0)?, // P3
        Ask::new(t0(), 1, 4.5)?, // P1b — the decoy
    ];
    let attacked = naive::run(&job, &attacked_tree, &attacked_asks);
    let attack_utility = attacked.utility(0, 2.0) + attacked.utility(3, 2.0);
    println!(
        "attack:  P1a wins {} @ {:.2}, decoy P1b wins {} — total utility {:.2}",
        attacked.allocation[0],
        attacked.auction_payments[0],
        attacked.allocation[3],
        attack_utility
    );
    assert!(
        attack_utility > honest_utility,
        "the §4 counterexample must show a strict gain"
    );
    println!("⇒ sybil-proofness violated: {attack_utility:.2} > {honest_utility:.2}\n");
    Ok(())
}

/// Fig 3: four sellers with costs 5, 4, 5, 4, two tasks. Truthful P1 loses
/// (utility 0); underbidding to 4−ε wins at a clearing price equal to its
/// cost — zero auction profit — but the naive tree reward turns the lie
/// strictly profitable.
fn fig3_tree_breaks_truthfulness() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig 3: untruthfulness under the naive combination ==\n");
    let job = Job::from_counts(vec![2])?;
    let tree = generate::path(4); // P2, P3, P4 hang below P1
    let costs = [5.0, 4.0, 5.0, 4.0];

    let truthful: Vec<Ask> = costs
        .iter()
        .map(|&c| Ask::new(t0(), 1, c))
        .collect::<Result<_, _>>()?;
    let honest = naive::run(&job, &tree, &truthful);
    println!(
        "truthful: P1 auction payment {:.2}, final payment {:.2}, utility {:.2}",
        honest.auction_payments[0],
        honest.payments[0],
        honest.utility(0, costs[0])
    );

    let mut lying = truthful.clone();
    lying[0] = Ask::new(t0(), 1, 4.0 - 1e-6)?;
    let dishonest = naive::run(&job, &tree, &lying);
    println!(
        "lying:    P1 bids 4−ε, auction payment {:.2}, final payment {:.2}, utility {:.2}",
        dishonest.auction_payments[0],
        dishonest.payments[0],
        dishonest.utility(0, costs[0])
    );
    assert!(dishonest.utility(0, costs[0]) > honest.utility(0, costs[0]));
    println!(
        "⇒ truthfulness violated: {:.2} > {:.2}",
        dishonest.utility(0, costs[0]),
        honest.utility(0, costs[0])
    );
    Ok(())
}
