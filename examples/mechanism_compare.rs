//! One pipeline, three mechanisms: RIT vs the paper's baselines.
//!
//! The [`Mechanism`] trait runs RIT (Algorithm 3), the §4 naive
//! `k`-th-price + contribution-tree combination, and the §1 DARPA Network
//! Challenge referral scheme through the same recruit→auction→payment
//! pipeline and normalizes each outcome into a common view — so one loop
//! prints a like-for-like economics table for all three.
//!
//! ```sh
//! cargo run --example mechanism_compare
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit::core::{Rit, RitConfig, RoundLimit};
use rit::model::Job;
use rit::sim::scenario::{Scenario, ScenarioConfig};
use rit::{DarpaReferral, Mechanism, MechanismKind, MechanismOutcome, NaiveKthPriceTree};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::generate(&ScenarioConfig::paper(1_200), 42);
    let job = Job::uniform(4, 80)?;

    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })?;
    let naive = NaiveKthPriceTree::new();
    let darpa = DarpaReferral::new();

    println!(
        "{} users, {} tasks\n",
        scenario.asks.len(),
        job.total_tasks()
    );
    println!("mechanism | done | total payment | auction | solicitation");
    println!("----------|------|---------------|---------|-------------");
    for kind in MechanismKind::ALL {
        // Same seed for every mechanism: differences below are mechanism
        // design, not sampling noise.
        let mut rng = SmallRng::seed_from_u64(7);
        let outcome = match kind {
            MechanismKind::Rit => rit.evaluate(&job, &scenario.tree, &scenario.asks, &mut rng)?,
            MechanismKind::Naive => {
                naive.evaluate(&job, &scenario.tree, &scenario.asks, &mut rng)?
            }
            MechanismKind::Darpa => {
                darpa.evaluate(&job, &scenario.tree, &scenario.asks, &mut rng)?
            }
        };
        print_row(kind, &outcome);
    }

    println!(
        "\nEvery row ran through Mechanism::evaluate — the same generic entry\n\
         point the simulation campaigns, the attack batteries, and\n\
         `experiments compare` use. See `rit run --mechanism` for the CLI."
    );
    Ok(())
}

fn print_row(kind: MechanismKind, outcome: &MechanismOutcome) {
    let auction = outcome.total_auction_payment();
    let total = outcome.total_payment();
    println!(
        "{kind:<9} | {}  | {total:>13.2} | {auction:>7.2} | {:>12.2}",
        if outcome.completed() { "yes" } else { "no " },
        total - auction,
    );
}
