//! Regenerate every figure of the paper at smoke scale, in-process.
//!
//! This is a library-API version of the `experiments` binary: it runs the
//! user sweep (Figs 6a/7a/8a), the task sweep (Figs 6b/7b/8b) and the Fig 9
//! sybil probe at a size that finishes in well under a minute, and prints
//! each figure as a Markdown table.
//!
//! For paper-shaped curves run the binary instead:
//!
//! ```sh
//! cargo run --release -p rit-sim --bin experiments -- --scale default --runs 20
//! ```

use rit::sim::experiments::{fig9, sweeps, Scale};

fn main() {
    let config = sweeps::SweepConfig::new(Scale::Smoke, 5, 2017);

    println!("running user sweep (Figs 6a, 7a, 8a)…\n");
    let users = sweeps::user_sweep(&config);
    print!("{}", sweeps::utility_figure(&users).to_markdown());
    print!("{}", sweeps::payment_figure(&users).to_markdown());
    print!("{}", sweeps::runtime_figure(&users).to_markdown());

    println!("\nrunning task sweep (Figs 6b, 7b, 8b)…\n");
    let tasks = sweeps::task_sweep(&config);
    print!("{}", sweeps::utility_figure(&tasks).to_markdown());
    print!("{}", sweeps::payment_figure(&tasks).to_markdown());
    print!("{}", sweeps::runtime_figure(&tasks).to_markdown());

    println!("\nrunning Fig 9 sybil/truthfulness probe…\n");
    let fig = fig9::run(&fig9::Fig9Config {
        scale: Scale::Smoke,
        runs: 5,
        seed: 2017,
    });
    print!("{}", fig.to_markdown());

    println!("\nexpected shapes (paper §7-C):");
    println!("  Fig 6a: utility decreases with more users; RIT ≥ auction phase");
    println!("  Fig 6b: utility increases with job size");
    println!("  Fig 7a: total payment roughly flat in the user count");
    println!("  Fig 7b: total payment increases with job size; RIT ≤ 2× auction");
    println!("  Fig 8:  running time linear in both sweeps");
    println!("  Fig 9:  attacker utility falls with more identities; truthful ask best");
}
