//! A platform lifecycle: repeated jobs over a growing membership.
//!
//! Six sensing jobs are posted in sequence; between jobs, recruitment
//! cascades deepen the incentive tree. The example reports per-epoch
//! platform economics and the lifetime earnings by join cohort — showing
//! that under RIT, joining early (higher in the tree, more auctions played)
//! weakly dominates joining late, which is precisely the solicitation
//! incentive at work across time.
//!
//! ```sh
//! cargo run --release --example platform_campaign
//! ```

use rit::sim::campaign::{self, CampaignConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CampaignConfig {
        num_jobs: 8,
        universe: 8_000,
        initial_target: 2_000,
        growth_per_epoch: 600,
        ..CampaignConfig::small()
    };
    let report = campaign::run(&config, 2017)?;

    println!("epoch  members  completed  total $    $/task   solicit.%");
    for (i, e) in report.epochs.iter().enumerate() {
        println!(
            "{:<7}{:<9}{:<11}{:<11.2}{:<9.4}{:.1}%",
            i,
            e.members,
            if e.completed { "yes" } else { "no" },
            e.total_payment,
            e.cost_per_task,
            100.0 * e.solicitation_share,
        );
    }

    println!("\nlifetime earnings by join cohort:");
    println!("join epoch  cohort size  mean lifetime utility");
    for epoch in 0..report.epochs.len() {
        let size = report.join_epoch.iter().filter(|&&e| e == epoch).count();
        if size == 0 {
            continue;
        }
        println!(
            "{:<12}{:<13}{:.3}",
            epoch,
            size,
            report.mean_earnings_by_join_epoch(epoch)
        );
    }
    println!(
        "\nearly cohorts earn more over the campaign: they sit higher in the tree\n\
         (larger (1/2)^r shares of every later recruit) and play more auctions."
    );
    Ok(())
}
