//! Quality gating — the paper's deferred "data quality" direction, in
//! action.
//!
//! The platform holds exogenous per-user quality scores and screens
//! low-quality users out of *task allocation* (never out of recruiting)
//! before the auction opens. Because eligibility cannot be influenced by
//! any ask, every robustness property survives; the price is economic:
//! fewer eligible sellers ⇒ higher clearing prices. The example sweeps the
//! quality bar and shows the cost curve, plus the detail that screened
//! recruiters keep earning referral money.
//!
//! ```sh
//! cargo run --release --example quality_gates
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rit::core::quality::QualityPolicy;
use rit::core::{Rit, RitConfig, RoundLimit};
use rit::model::Job;
use rit::sim::analysis;
use rit::sim::scenario::{Scenario, ScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ScenarioConfig::paper(3000);
    config.workload.num_types = 4;
    let scenario = Scenario::generate(&config, 33);
    let job = Job::uniform(4, 150)?;
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })?;

    // Exogenous quality scores in [0, 1]; a third of users have no history.
    let mut rng = SmallRng::seed_from_u64(7);
    let scores: Vec<Option<f64>> = (0..scenario.num_users())
        .map(|_| {
            if rng.gen_bool(1.0 / 3.0) {
                None
            } else {
                Some(rng.gen::<f64>())
            }
        })
        .collect();

    println!("min quality  eligible  completed  total $    $/task   gini");
    for &bar in &[0.0, 0.25, 0.5, 0.7, 0.85] {
        let policy = QualityPolicy {
            min_quality: bar,
            default_quality: 0.5,
        };
        let eligible = policy.eligibility(&scores);
        let eligible_count = eligible.iter().filter(|&&e| e).count();
        let mut run_rng = SmallRng::seed_from_u64(11);
        let outcome = rit.run_screened(
            &job,
            &scenario.tree,
            &scenario.asks,
            &eligible,
            &mut run_rng,
        )?;
        if outcome.completed() {
            let stats = analysis::summarize(&scenario.asks, &outcome);
            println!(
                "{bar:<13}{eligible_count:<10}yes        {:<11.2}{:<9.4}{:.3}",
                outcome.total_payment(),
                outcome.total_payment() / job.total_tasks() as f64,
                stats.gini,
            );
        } else {
            println!("{bar:<13}{eligible_count:<10}no         —          —        —");
        }
    }

    // Screened recruiters still earn.
    let policy = QualityPolicy {
        min_quality: 0.7,
        default_quality: 0.5,
    };
    let eligible = policy.eligibility(&scores);
    let mut run_rng = SmallRng::seed_from_u64(11);
    let outcome = rit.run_screened(
        &job,
        &scenario.tree,
        &scenario.asks,
        &eligible,
        &mut run_rng,
    )?;
    if outcome.completed() {
        let rewards = outcome.solicitation_rewards();
        let screened_earners = (0..scenario.num_users())
            .filter(|&j| !eligible[j] && rewards[j] > 1e-9)
            .count();
        println!(
            "\nat bar 0.7: {screened_earners} screened users still earn referral rewards —\n\
             quality gates sensing, not recruiting."
        );
    }
    Ok(())
}
