//! Quickstart: run RIT once on a small crowdsensing scenario and inspect
//! the outcome.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit::core::{Rit, RitConfig, RoundLimit};
use rit::model::Job;
use rit::sim::scenario::{Scenario, ScenarioConfig};
use rit::tree::stats::TreeStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2,000 users with the paper's §7-A profile distribution, recruited over
    // a Barabási–Albert social graph via the spanning-forest rule.
    let scenario = Scenario::generate(&ScenarioConfig::paper(2000), 42);
    let stats = TreeStats::compute(&scenario.tree);
    println!(
        "incentive tree: {} users, max depth {}, mean depth {:.2}, {} direct joiners",
        stats.num_users, stats.max_depth, stats.mean_depth, stats.num_seeds
    );

    // A job with 10 task types (areas), 150 tasks each.
    let job = Job::uniform(10, 150)?;
    println!(
        "job: {} tasks across {} types",
        job.total_tasks(),
        job.num_types()
    );

    // H = 0.8 as in the paper. The job here is small relative to user
    // capacities, so run the auction best-effort (see RoundLimit docs).
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })?;

    let mut rng = SmallRng::seed_from_u64(7);
    let outcome = rit.run(&job, &scenario.tree, &scenario.asks, &mut rng)?;

    if !outcome.completed() {
        println!("job not completable this round — all payments void (paper Line 27)");
        return Ok(());
    }

    let utilities = outcome.utilities(scenario.population.as_slice());
    let winners = outcome.allocation().iter().filter(|&&x| x > 0).count();
    let recruiters_paid = outcome
        .solicitation_rewards()
        .iter()
        .filter(|&&r| r > 1e-12)
        .count();

    println!(
        "allocated {} tasks to {} winning users",
        outcome.total_allocated(),
        winners
    );
    println!(
        "platform pays {:.2} total ({:.2} auction + {:.2} solicitation rewards to {} recruiters)",
        outcome.total_payment(),
        outcome.total_auction_payment(),
        outcome.total_payment() - outcome.total_auction_payment(),
        recruiters_paid,
    );
    println!(
        "average user utility {:.4}; minimum utility {:.4} (individual rationality ⇒ ≥ 0)",
        utilities.iter().sum::<f64>() / utilities.len() as f64,
        utilities.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
    );

    // Show the five best-paid users.
    let mut by_pay: Vec<usize> = (0..scenario.num_users()).collect();
    by_pay.sort_by(|&a, &b| outcome.payment(b).total_cmp(&outcome.payment(a)));
    println!("\ntop 5 payments:");
    println!("user  type  tasks  auction   solicit.   total");
    for &j in by_pay.iter().take(5) {
        let solicit = outcome.payment(j) - outcome.auction_payments()[j];
        println!(
            "P{:<5}{:<6}{:<7}{:<10.2}{:<11.2}{:.2}",
            j + 1,
            scenario.population[j].task_type().to_string(),
            outcome.allocation()[j],
            outcome.auction_payments()[j],
            solicit,
            outcome.payment(j),
        );
    }
    Ok(())
}
