//! Planning the solicitation threshold `N` (Remark 6.1) and watching the
//! auction phase work, round by round.
//!
//! The platform must keep recruiting until the joined users can jointly
//! complete at least `2·mᵢ` tasks per type — otherwise CRA cannot select its
//! `q + mᵢ` potential winners and the truthfulness guarantee (and often the
//! job itself) is lost. This example:
//!
//! 1. estimates the threshold a priori from the workload distribution;
//! 2. grows membership with a *probabilistic* recruitment cascade over a
//!    social graph, checking the exact Remark 6.1 stopping rule after each
//!    cascade stage;
//! 3. runs RIT with execution tracing and prints the per-round story of one
//!    task type.
//!
//! ```sh
//! cargo run --release --example recruitment_planning
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit::core::{recruitment, Rit, RitConfig, RoundLimit};
use rit::model::workload::WorkloadConfig;
use rit::model::{Ask, Job};
use rit::socialgraph::diffusion::{self, DiffusionConfig};
use rit::socialgraph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadConfig::paper();
    let job = Job::uniform(10, 400)?;
    let mut rng = SmallRng::seed_from_u64(2017);

    // 1. A-priori estimate from the distribution.
    let estimate = recruitment::estimate_threshold(&job, workload.capacity_max, 1.3);
    println!(
        "job {} tasks / {} types; estimated recruitment threshold N ≈ {estimate}",
        job.total_tasks(),
        job.num_types()
    );

    // 2. Grow membership in cascade stages until the exact rule is met.
    let graph = generators::barabasi_albert(4 * estimate, 2, &mut rng);
    let mut target = estimate / 2;
    let (tree, asks) = loop {
        let outcome = diffusion::simulate(
            &graph,
            &[0],
            &DiffusionConfig {
                invite_prob: 0.6,
                target: Some(target),
                max_rounds: 64,
            },
            &mut rng,
        );
        // Joined users draw their private profiles.
        let mut profile_rng = SmallRng::seed_from_u64(7);
        let population = workload.sample_population(outcome.tree.num_users(), &mut profile_rng)?;
        let asks: Vec<Ask> = population.truthful_asks().into_vec();
        match recruitment::capacity_satisfied(&job, &asks) {
            Ok(()) => {
                println!(
                    "{} users joined after {} cascade rounds — Remark 6.1 satisfied, stop recruiting",
                    outcome.tree.num_users(),
                    outcome.rounds
                );
                break (outcome.tree, asks);
            }
            Err((task_type, shortfall)) => {
                println!(
                    "{} users joined: type {task_type} still short {shortfall} claimed tasks — keep recruiting",
                    outcome.tree.num_users()
                );
                target += estimate / 4;
            }
        }
    };

    let stats = rit::tree::stats::TreeStats::compute(&tree);
    println!(
        "cascade tree: max depth {}, mean depth {:.2}, {} recruiters",
        stats.max_depth, stats.mean_depth, stats.num_recruiters
    );

    // 3. Run the auction phase with tracing and narrate one type.
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })?;
    let (phase, traces) = rit.run_auction_phase_traced(&job, &asks, &mut rng)?;
    println!(
        "\nauction phase {}: {} tasks allocated",
        if phase.completed() {
            "completed"
        } else {
            "incomplete"
        },
        phase.allocation.iter().sum::<u64>()
    );

    let busiest = traces
        .iter()
        .max_by_key(|t| t.rounds.len())
        .expect("job has types");
    println!(
        "\nbusiest type {} ({} tasks, {} rounds, {} empty):",
        busiest.task_type,
        busiest.tasks,
        busiest.rounds.len(),
        busiest.empty_rounds()
    );
    println!("round  q_before  unit_asks  sample  z_s     n_s     winners  price");
    for r in busiest.rounds.iter().take(12) {
        println!(
            "{:<7}{:<10}{:<11}{:<8}{:<8}{:<8}{:<9}{:.3}",
            r.round,
            r.q_before,
            r.unit_asks,
            r.diagnostics.sample_size,
            r.diagnostics.raw_count,
            r.diagnostics.consensus_count,
            r.winners,
            r.clearing_price,
        );
    }
    println!(
        "\ntype expenditure {:.2}; total auction expenditure {:.2}",
        busiest.expenditure(),
        phase.auction_payments.iter().sum::<f64>()
    );
    Ok(())
}
