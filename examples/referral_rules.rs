//! Comparing referral-reward rules on one recruitment tree.
//!
//! Three rules from the design space the paper navigates (see
//! `rit::core::referral`): the DARPA distance decay, the §4 subtree-log
//! bonus, and RIT's depth-anchored weights. For each rule the example
//! reports (a) the platform's total payout over the auction total and
//! (b) the Lemma 6.4 split-resistance screen for every recruiter — showing
//! *why* the paper lands on absolute-depth weights.
//!
//! ```sh
//! cargo run --release --example referral_rules
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit::core::referral::{
    split_resistance, GeometricDepth, GeometricDistance, ReferralReward, SubtreeLogBonus,
};
use rit::core::{Rit, RitConfig, RoundLimit};
use rit::model::Job;
use rit::sim::scenario::{Scenario, ScenarioConfig};
use rit::tree::NodeId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ScenarioConfig::paper(1200);
    config.workload.num_types = 4;
    let scenario = Scenario::generate(&config, 21);
    let job = Job::uniform(4, 150)?;

    // One auction-phase run provides the contributions every rule shares.
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })?;
    let mut rng = SmallRng::seed_from_u64(4);
    let phase = rit.run_auction_phase(&job, &scenario.asks, &mut rng)?;
    let contributions = &phase.auction_payments;
    let auction_total: f64 = contributions.iter().sum();
    println!(
        "auction phase: {} tasks, total auction payment {auction_total:.2}\n",
        phase.allocation.iter().sum::<u64>()
    );

    let rules: Vec<Box<dyn ReferralReward>> = vec![
        Box::new(GeometricDistance::default()),
        Box::new(SubtreeLogBonus),
        Box::new(GeometricDepth),
    ];

    println!(
        "{:<32}{:>14}{:>12}{:>18}",
        "rule", "total payout", "overhead", "split-vulnerable"
    );
    for rule in &rules {
        let payments = rule.payments(&scenario.tree, &scenario.asks, contributions);
        let total: f64 = payments.iter().sum();

        // Screen every recruiter with a positive contribution.
        let mut vulnerable = 0usize;
        let mut screened = 0usize;
        for j in 0..scenario.num_users() {
            let node = NodeId::from_user_index(j);
            if contributions[j] > 0.0 && !scenario.tree.children(node).is_empty() {
                screened += 1;
                let screen = split_resistance(
                    rule.as_ref(),
                    &scenario.tree,
                    &scenario.asks,
                    contributions,
                    j,
                    4,
                );
                if !screen.resistant() {
                    vulnerable += 1;
                }
            }
        }
        println!(
            "{:<32}{:>14.2}{:>11.1}%{:>12}/{screened}",
            rule.name(),
            total,
            100.0 * (total - auction_total) / auction_total,
            vulnerable,
        );
    }

    println!(
        "\nthe distance-decay rule is split-vulnerable at every contributing recruiter;\n\
         the log-bonus rule resists splits, but the doubling in `2·p^A + ln(…)` rewards a\n\
         recruiter per unit of its *own* manipulated auction payment — the §4-B\n\
         truthfulness break (see `design_challenges`); RIT's depth rule resists splits\n\
         at a bounded overhead (≤ 100% of the auction total, §7)."
    );
    Ok(())
}
