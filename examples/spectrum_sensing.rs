//! Mobile spectrum sensing — the paper's motivating application (§3-A).
//!
//! A platform needs spectrum-usage measurements in several geographic areas;
//! each area is a task type and each point of interest (POI) one task. Users
//! can only sense the area they are in, can cover a limited number of POIs,
//! and incur battery/time costs per POI. The initial user base is too small
//! to finish the job, so the platform relies on solicitation — which is
//! exactly what RIT prices.
//!
//! ```sh
//! cargo run --example spectrum_sensing
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit::core::{Rit, RitConfig, RoundLimit};
use rit::model::workload::WorkloadConfig;
use rit::model::{Job, JobBuilder, TaskTypeId};
use rit::sim::scenario::{GraphModel, Scenario, ScenarioConfig};

const AREAS: [(&str, u64); 4] = [
    ("downtown", 400),
    ("campus", 250),
    ("harbor", 150),
    ("suburbs", 100),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // POIs to sense per area.
    let job: Job = AREAS
        .iter()
        .enumerate()
        .fold(JobBuilder::new(), |b, (i, &(_, pois))| {
            b.tasks(TaskTypeId::new(i as u32), pois)
        })
        .build()?;
    println!(
        "spectrum sensing job: {} POIs over {} areas",
        job.total_tasks(),
        job.num_types()
    );

    // 5,000 users; smartphones can cover up to 12 POIs at ≤ $4 each.
    // Recruiting flows through a small-world contact graph this time.
    let config = ScenarioConfig {
        num_users: 5000,
        workload: WorkloadConfig {
            num_types: AREAS.len(),
            capacity_max: 12,
            cost_max: 4.0,
        },
        graph: GraphModel::WattsStrogatz { k: 6, beta: 0.2 },
    };
    let scenario = Scenario::generate(&config, 99);

    let rit = Rit::new(RitConfig {
        h: 0.8,
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })?;

    let mut rng = SmallRng::seed_from_u64(17);
    let outcome = rit.run(&job, &scenario.tree, &scenario.asks, &mut rng)?;
    if !outcome.completed() {
        println!("not enough sensing capacity recruited — job void, nobody paid");
        return Ok(());
    }

    // Per-area accounting.
    println!("\narea      POIs  sensors  auction $   avg $/POI");
    for (i, &(name, pois)) in AREAS.iter().enumerate() {
        let t = TaskTypeId::new(i as u32);
        let mut sensors = 0usize;
        let mut auction = 0.0;
        for j in 0..scenario.num_users() {
            if scenario.population[j].task_type() == t && outcome.allocation()[j] > 0 {
                sensors += 1;
                auction += outcome.auction_payments()[j];
            }
        }
        println!(
            "{name:<10}{pois:<6}{sensors:<9}{auction:<12.2}{:.3}",
            auction / pois as f64
        );
    }

    // Solicitation economics: who earns referral money, and from how deep?
    let rewards = outcome.solicitation_rewards();
    let mut by_depth: Vec<(u32, f64, usize)> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for j in 0..scenario.num_users() {
        if rewards[j] > 1e-9 {
            let d = scenario.tree.depth(rit::tree::NodeId::from_user_index(j));
            match by_depth.iter_mut().find(|(depth, _, _)| *depth == d) {
                Some((_, sum, count)) => {
                    *sum += rewards[j];
                    *count += 1;
                }
                None => by_depth.push((d, rewards[j], 1)),
            }
        }
    }
    by_depth.sort_by_key(|&(d, _, _)| d);
    println!("\nsolicitation rewards by recruiter depth:");
    println!("depth  recruiters  total $");
    for (d, sum, count) in by_depth.iter().take(8) {
        println!("{d:<7}{count:<12}{sum:.2}");
    }
    println!(
        "\nplatform total: {:.2} (auction {:.2} + solicitation {:.2} ≤ 2× auction, §7 bound)",
        outcome.total_payment(),
        outcome.total_auction_payment(),
        outcome.total_payment() - outcome.total_auction_payment()
    );
    Ok(())
}
