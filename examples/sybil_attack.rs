//! Sybil attacks at population scale: RIT vs the naive §4 combination.
//!
//! Three experiments on one 1,500-user scenario:
//!
//! 1. **Equal-ask splitting against RIT** (the Lemma 6.4 attack class): the
//!    attacker divides its capacity among δ identities at its true price.
//!    Expected: utility statistically indistinguishable from honest, never
//!    clearly above it.
//! 2. **Price-decoy sybil against the naive mechanism**: the attacker
//!    withholds one unit from the winner set and re-bids it just under the
//!    next losing ask, dragging the uniform clearing price up for its
//!    remaining units. Expected: strictly profitable — the §4 Fig 2 failure,
//!    constructed automatically from the market state.
//! 3. **The same decoy against RIT**: the consensus-rounded price cannot be
//!    steered by one user's units. Expected: no significant gain.
//!
//! ```sh
//! cargo run --release --example sybil_attack
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit::auction::extract;
use rit::core::sybil_exec::{self};
use rit::core::{naive, Rit, RitConfig, RoundLimit};
use rit::model::{Ask, Job};
use rit::sim::metrics::MeanStd;
use rit::sim::scenario::{Scenario, ScenarioConfig};
use rit::tree::sybil::SybilPlan;

const RUNS: u64 = 150;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ScenarioConfig::paper(1500);
    config.workload.num_types = 4;
    let scenario = Scenario::generate(&config, 11);
    let job = Job::uniform(4, 200)?;
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })?;

    equal_ask_split_vs_rit(&rit, &job, &scenario)?;

    // The price-decoy attack needs a *thin* market — with thousands of
    // competing units the gap between the clearing price and the next losing
    // ask is too small to pay for the withheld unit. A few dozen sellers is
    // exactly the "not enough users" regime the paper motivates.
    let (thin_job, thin_scenario) = thin_market();
    let (attacker, decoy) = price_decoy_vs_naive(&thin_job, &thin_scenario)?;
    let _ = (attacker, decoy);
    price_decoy_vs_rit()?;
    Ok(())
}

/// A thin single-type market where decoy manipulation has room to pay:
/// scans seeds until the gap structure admits a profitable decoy.
fn thin_market() -> (Job, Scenario) {
    let mut config = ScenarioConfig::paper(60);
    config.workload.num_types = 1;
    config.workload.capacity_max = 4;
    let job = Job::from_counts(vec![40]).expect("non-empty job");
    for seed in 0.. {
        let scenario = Scenario::generate(&config, seed);
        if find_decoy(&job, &scenario).is_some() {
            return (job, scenario);
        }
    }
    unreachable!("seed scan always terminates at the first admissible market")
}

/// Returns `(attacker, decoy_price, estimated_gain)` for the most profitable
/// withhold-and-decoy manipulation of the naive mechanism, if any.
fn find_decoy(job: &Job, scenario: &Scenario) -> Option<(usize, f64, f64)> {
    let honest = naive::run(job, &scenario.tree, &scenario.asks);
    let mut best: Option<(usize, f64, f64)> = None;
    for (task_type, m_i) in job.iter() {
        let alpha = extract::extract(task_type, &scenario.asks);
        let mut values: Vec<f64> = alpha.values().to_vec();
        values.sort_by(f64::total_cmp);
        let slots = m_i as usize;
        if values.len() < slots + 2 {
            continue;
        }
        let clearing = values[slots];
        let next_losing = values[slots + 1];
        if next_losing <= clearing {
            continue;
        }
        let decoy = next_losing - 1e-6;
        for j in 0..scenario.num_users() {
            if scenario.asks[j].task_type() != task_type || honest.allocation[j] < 2 {
                continue;
            }
            let units = honest.allocation[j] as f64;
            let margin_lost = clearing - scenario.asks[j].unit_price();
            let gain = (units - 1.0) * (decoy - clearing) - margin_lost;
            if gain > best.map_or(0.05, |(_, _, g)| g) {
                best = Some((j, decoy, gain));
            }
        }
    }
    best
}

fn rit_utility_stats(
    rit: &Rit,
    job: &Job,
    tree: &rit::tree::IncentiveTree,
    asks: &[Ask],
    users: &[usize],
    cost: f64,
    seed_base: u64,
) -> MeanStd {
    let mut acc = MeanStd::new();
    for seed in 0..RUNS {
        let mut rng = SmallRng::seed_from_u64(seed_base + seed);
        let out = rit
            .run(job, tree, asks, &mut rng)
            .expect("aligned scenario");
        acc.push(users.iter().map(|&u| out.utility(u, cost)).sum());
    }
    acc
}

fn equal_ask_split_vs_rit(
    rit: &Rit,
    job: &Job,
    scenario: &Scenario,
) -> Result<(), Box<dyn std::error::Error>> {
    println!("== 1. equal-ask capacity split vs RIT (Lemma 6.4 class) ==\n");
    let attacker = (0..scenario.num_users())
        .find(|&j| scenario.population[j].capacity() >= 8)
        .expect("a high-capacity user exists");
    let cost = scenario.population[attacker].unit_cost();
    let capacity = scenario.population[attacker].capacity();

    let honest = rit_utility_stats(
        rit,
        job,
        &scenario.tree,
        &scenario.asks,
        &[attacker],
        cost,
        0,
    );
    println!(
        "attacker P{} (capacity {capacity}, cost {cost:.2}); honest: {:.3} ± {:.3}\n",
        attacker + 1,
        honest.mean(),
        honest.std_dev()
    );
    println!("δ   attacked utility (mean ± std)");
    for delta in [2usize, 4, 6, 8] {
        let mut acc = MeanStd::new();
        for seed in 0..RUNS {
            let mut rng = SmallRng::seed_from_u64(1_000_000 + seed);
            let identity_asks = sybil_exec::uniform_identity_asks(
                scenario.asks[attacker].task_type(),
                capacity,
                delta,
                scenario.asks[attacker].unit_price(),
                &mut rng,
            );
            let sc = sybil_exec::apply_attack(
                &scenario.tree,
                &scenario.asks,
                attacker,
                &identity_asks,
                &SybilPlan::random(delta),
                &mut rng,
            )?;
            let out = rit.run(job, &sc.tree, &sc.asks, &mut rng)?;
            acc.push(sc.attacker_utility(&out, cost));
        }
        let gain = acc.mean() - honest.mean();
        println!(
            "{delta:<4}{:.3} ± {:.3}   (gain {gain:+.3})",
            acc.mean(),
            acc.std_dev()
        );
    }
    println!("⇒ splitting shuffles randomness but buys no systematic gain\n");
    Ok(())
}

/// Finds a naive-auction winner with ≥ 2 winning units and runs the
/// price-decoy attack: keep capacity−1 units at the original ask, move one
/// unit to a decoy price just below the next losing ask.
fn price_decoy_vs_naive(
    job: &Job,
    scenario: &Scenario,
) -> Result<(usize, f64), Box<dyn std::error::Error>> {
    println!("== 2. price-decoy sybil vs the naive combination ==\n");
    let honest = naive::run(job, &scenario.tree, &scenario.asks);
    let (attacker, decoy, _) = find_decoy(job, scenario).expect("thin market admits a decoy");
    let cost = scenario.population[attacker].unit_cost();
    let honest_utility = honest.utility(attacker, cost);
    println!(
        "attacker P{} wins {} tasks honestly → utility {:.3}",
        attacker + 1,
        honest.allocation[attacker],
        honest_utility
    );

    // Identity asks: capacity−1 units at the old price + 1 decoy unit.
    let base = scenario.asks[attacker];
    let identity_asks = vec![
        base.with_quantity(base.quantity() - 1)?,
        Ask::new(base.task_type(), 1, decoy)?,
    ];
    let mut rng = SmallRng::seed_from_u64(5);
    let sc = sybil_exec::apply_attack(
        &scenario.tree,
        &scenario.asks,
        attacker,
        &identity_asks,
        &SybilPlan::chain(2),
        &mut rng,
    )?;
    let attacked = naive::run(job, &sc.tree, &sc.asks);
    let attack_utility: f64 = sc
        .identity_users
        .iter()
        .map(|&u| attacked.utility(u, cost))
        .sum();
    println!(
        "decoy at {decoy:.3}: identities win {} tasks → total utility {:.3}",
        sc.identity_users
            .iter()
            .map(|&u| attacked.allocation[u])
            .sum::<u64>(),
        attack_utility
    );
    assert!(
        attack_utility > honest_utility,
        "decoy attack should beat honesty under the naive mechanism"
    );
    println!("⇒ naive mechanism manipulated: {attack_utility:.3} > {honest_utility:.3}\n");
    Ok((attacker, decoy))
}

/// The decoy attack at a guarantee-feasible scale. RIT's `(K_max, H)` bound
/// only holds when the per-type job dwarfs the coalition (Remark 6.1), so
/// this part uses a dense single-type market (`mᵢ = 2000`, `K_max = 4`) where
/// the paper round budget is comfortably positive — `η = 0.8` per type.
fn price_decoy_vs_rit() -> Result<(), Box<dyn std::error::Error>> {
    println!("== 3. the same decoy attack vs RIT (guarantee-feasible scale) ==\n");
    // The paper round budget applies here, so use the default configuration.
    let rit = &Rit::new(RitConfig::default())?;
    let mut config = ScenarioConfig::paper(6000);
    config.workload.num_types = 1;
    config.workload.capacity_max = 4;
    let scenario = Scenario::generate(&config, 23);
    let job = Job::from_counts(vec![2000])?;

    // Attacker: any user with ≥ 2 units priced well below the market middle.
    let attacker = (0..scenario.num_users())
        .find(|&j| scenario.asks[j].quantity() >= 3 && scenario.asks[j].unit_price() < 2.0)
        .expect("a cheap multi-unit seller exists in 6000 draws");
    let cost = scenario.population[attacker].unit_cost();
    let honest = rit_utility_stats(
        rit,
        &job,
        &scenario.tree,
        &scenario.asks,
        &[attacker],
        cost,
        7_000_000,
    );

    // Decoy just below the static order book's next losing ask — the move
    // that beat the naive mechanism above.
    let alpha = extract::extract(scenario.asks[attacker].task_type(), &scenario.asks);
    let mut values: Vec<f64> = alpha.values().to_vec();
    values.sort_by(f64::total_cmp);
    let decoy = values[2001] - 1e-6;

    let base = scenario.asks[attacker];
    let identity_asks = vec![
        base.with_quantity(base.quantity() - 1)?,
        Ask::new(base.task_type(), 1, decoy)?,
    ];
    const PART3_RUNS: u64 = 500;
    let mut acc = MeanStd::new();
    for seed in 0..PART3_RUNS {
        let mut rng = SmallRng::seed_from_u64(9_000_000 + seed);
        let sc = sybil_exec::apply_attack(
            &scenario.tree,
            &scenario.asks,
            attacker,
            &identity_asks,
            &SybilPlan::chain(2),
            &mut rng,
        )?;
        let out = rit.run(&job, &sc.tree, &sc.asks, &mut rng)?;
        acc.push(sc.attacker_utility(&out, cost));
    }
    let gain = acc.mean() - honest.mean();
    let se = (honest.std_dev().powi(2) / honest.count() as f64
        + acc.std_dev().powi(2) / acc.count() as f64)
        .sqrt();
    println!(
        "honest: {:.3} ± {:.3}    decoy attack: {:.3} ± {:.3}",
        honest.mean(),
        honest.std_dev(),
        acc.mean(),
        acc.std_dev()
    );
    println!("gain {gain:+.3}, z = {:.2}", gain / se);
    println!(
        "⇒ no significant steering: the clearing price comes from a random sample +\n\
         consensus rounding, so one user's unit ordering cannot move it (w.p. ≥ H)"
    );
    Ok(())
}
