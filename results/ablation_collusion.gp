set datafile separator ','
set terminal pngcairo size 900,600
set output 'ablation_collusion.png'
set title "best decoy-manipulation gain: naive k-th price vs CRA"
set xlabel "tasks in the market (m_i)"
set ylabel "attacker gain over honest"
set key outside right
plot 'ablation_collusion.csv' skip 1 using 1:2:3 with yerrorlines title "naive k-th price (exact)", 'ablation_collusion.csv' skip 1 using 1:4:5 with yerrorlines title "RIT/CRA (mean)"
