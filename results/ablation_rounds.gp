set datafile separator ','
set terminal pngcairo size 900,600
set output 'ablation_rounds.png'
set title "auction-phase completion rate per round-budget policy"
set xlabel "tasks per type (m_i)"
set ylabel "completion rate"
set key outside right
plot 'ablation_rounds.csv' skip 1 using 1:2:3 with yerrorlines title "paper budget, q = 0", 'ablation_rounds.csv' skip 1 using 1:4:5 with yerrorlines title "paper budget, q = m_i", 'ablation_rounds.csv' skip 1 using 1:6:7 with yerrorlines title "until stall"
