set datafile separator ','
set terminal pngcairo size 900,600
set output 'bound_check.png'
set title "coalition (k = 10) expected misreport gain vs Lemma 6.2 allowance"
set xlabel "tasks in the market (m_i)"
set ylabel "expected gain per coalition unit / probability"
set key outside right
plot 'bound_check.csv' skip 1 using 1:2:3 with yerrorlines title "gain, rank selection (paper Line 7)", 'bound_check.csv' skip 1 using 1:4:5 with yerrorlines title "gain, uniform-eligible selection", 'bound_check.csv' skip 1 using 1:6:7 with yerrorlines title "analytic allowance 1 − β"
