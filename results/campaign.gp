set datafile separator ','
set terminal pngcairo size 900,600
set output 'campaign.png'
set title "campaign lifecycle: membership, per-task cost, solicitation share"
set xlabel "epoch"
set ylabel "members / cost per task / share"
set key outside right
plot 'campaign.csv' skip 1 using 1:2:3 with yerrorlines title "members", 'campaign.csv' skip 1 using 1:4:5 with yerrorlines title "cost per task", 'campaign.csv' skip 1 using 1:6:7 with yerrorlines title "solicitation share"
