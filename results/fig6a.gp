set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig6a.png'
set title "average user utility vs number of users"
set xlabel "number of users"
set ylabel "average user utility"
set key outside right
plot 'fig6a.csv' skip 1 using 1:2:3 with yerrorlines title "auction phase", 'fig6a.csv' skip 1 using 1:4:5 with yerrorlines title "RIT"
