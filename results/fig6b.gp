set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig6b.png'
set title "average user utility vs job size"
set xlabel "tasks per type (m_i)"
set ylabel "average user utility"
set key outside right
plot 'fig6b.csv' skip 1 using 1:2:3 with yerrorlines title "auction phase", 'fig6b.csv' skip 1 using 1:4:5 with yerrorlines title "RIT"
