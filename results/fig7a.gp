set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig7a.png'
set title "total payment vs number of users"
set xlabel "number of users"
set ylabel "total platform payment"
set key outside right
plot 'fig7a.csv' skip 1 using 1:2:3 with yerrorlines title "auction phase", 'fig7a.csv' skip 1 using 1:4:5 with yerrorlines title "RIT"
