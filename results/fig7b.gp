set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig7b.png'
set title "total payment vs job size"
set xlabel "tasks per type (m_i)"
set ylabel "total platform payment"
set key outside right
plot 'fig7b.csv' skip 1 using 1:2:3 with yerrorlines title "auction phase", 'fig7b.csv' skip 1 using 1:4:5 with yerrorlines title "RIT"
