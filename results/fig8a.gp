set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig8a.png'
set title "running time vs number of users"
set xlabel "number of users"
set ylabel "running time (s)"
set key outside right
plot 'fig8a.csv' skip 1 using 1:2:3 with yerrorlines title "auction phase", 'fig8a.csv' skip 1 using 1:4:5 with yerrorlines title "RIT"
