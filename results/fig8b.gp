set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig8b.png'
set title "running time vs job size"
set xlabel "tasks per type (m_i)"
set ylabel "running time (s)"
set key outside right
plot 'fig8b.csv' skip 1 using 1:2:3 with yerrorlines title "auction phase", 'fig8b.csv' skip 1 using 1:4:5 with yerrorlines title "RIT"
