set datafile separator ','
set terminal pngcairo size 900,600
set output 'fig9.png'
set title "sybil attacker's total utility (c = 5.5, K = 17)"
set xlabel "number of identities"
set ylabel "attacker total utility"
set key outside right
plot 'fig9.csv' skip 1 using 1:2:3 with yerrorlines title "a29 = 5.5", 'fig9.csv' skip 1 using 1:4:5 with yerrorlines title "a29 = 6.25", 'fig9.csv' skip 1 using 1:6:7 with yerrorlines title "a29 = 6.5", 'fig9.csv' skip 1 using 1:8:9 with yerrorlines title "truthful, no attack"
