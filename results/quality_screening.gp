set datafile separator ','
set terminal pngcairo size 900,600
set output 'quality_screening.png'
set title "quality screening: completion and per-task cost vs screened fraction"
set xlabel "fraction of users screened out"
set ylabel "completion rate / cost per task"
set key outside right
plot 'quality_screening.csv' skip 1 using 1:2:3 with yerrorlines title "completion rate", 'quality_screening.csv' skip 1 using 1:4:5 with yerrorlines title "cost per task (completed runs)"
