set datafile separator ','
set terminal pngcairo size 900,600
set output 'robustness.png'
set title "RIT/auction payment ratio across cost distributions"
set xlabel "tasks per type (m_i)"
set ylabel "total payment ratio (RIT / auction phase)"
set key outside right
plot 'robustness.csv' skip 1 using 1:2:3 with yerrorlines title "uniform (paper)", 'robustness.csv' skip 1 using 1:4:5 with yerrorlines title "exponential", 'robustness.csv' skip 1 using 1:6:7 with yerrorlines title "bimodal", 'robustness.csv' skip 1 using 1:8:9 with yerrorlines title "log-normal"
