set datafile separator ','
set terminal pngcairo size 900,600
set output 'tree_shape.png'
set title "solicitation economics vs social-graph model (0 = BA, 1 = ER, 2 = WS)"
set xlabel "graph model index"
set ylabel "payment ratio / mean depth"
set key outside right
plot 'tree_shape.csv' skip 1 using 1:2:3 with yerrorlines title "payment ratio (RIT / auction)", 'tree_shape.csv' skip 1 using 1:4:5 with yerrorlines title "mean user depth"
