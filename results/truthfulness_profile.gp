set datafile separator ','
set terminal pngcairo size 900,600
set output 'truthfulness_profile.png'
set title "expected auction utility vs reported price (user 24, true cost 0.39)"
set xlabel "reported price / true cost"
set ylabel "expected utility / expected tasks"
set key outside right
plot 'truthfulness_profile.csv' skip 1 using 1:2:3 with yerrorlines title "expected utility", 'truthfulness_profile.csv' skip 1 using 1:4:5 with yerrorlines title "expected tasks won"
