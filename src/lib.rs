//! # rit — Robust Incentive Tree Design for Mobile Crowdsensing
//!
//! A production-quality Rust reproduction of *"Robust Incentive Tree Design
//! for Mobile Crowdsensing"* (Xiang Zhang, Guoliang Xue, Ruozhou Yu, Dejun
//! Yang, Jian Tang — ICDCS 2017).
//!
//! RIT is an incentive mechanism for crowdsensing platforms that rewards
//! users both for **performing sensing tasks** (via a randomized,
//! collusion-resistant sealed-bid auction) and for **recruiting other
//! users** (via geometrically weighted referral rewards over the
//! solicitation tree), while provably resisting untruthful bidding and
//! sybil attacks.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`model`] | jobs, task types, users, asks, §7-A workloads |
//! | [`tree`] | the incentive tree, traversal, sybil transformations |
//! | [`socialgraph`] | synthetic social networks + spanning-forest trees |
//! | [`auction`] | CRA, consensus rounding, Extract, k-th price, bounds |
//! | [`core`] | the RIT mechanism, payment phase, baselines, attack harness |
//! | [`sim`] | experiment drivers for every figure of the paper |
//! | [`telemetry`] | metrics registry, JSONL event export, run manifests |
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use rit::core::{Rit, RitConfig, RoundLimit};
//! use rit::model::{workload::WorkloadConfig, Job};
//! use rit::sim::scenario::{Scenario, ScenarioConfig};
//!
//! // A small end-to-end run: 1,000 users recruited over a synthetic social
//! // graph, a 10-type job, truthful asks.
//! let scenario = Scenario::generate(&ScenarioConfig::paper(1000), 42);
//! let job = Job::uniform(10, 60)?;
//! let rit = Rit::new(RitConfig {
//!     round_limit: RoundLimit::until_stall(),
//!     ..RitConfig::default()
//! })?;
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let outcome = rit.run(&job, &scenario.tree, &scenario.asks, &mut rng)?;
//! if outcome.completed() {
//!     assert_eq!(outcome.total_allocated(), 600);
//!     // Nobody loses money (individual rationality, Theorem 1).
//!     for (j, u) in outcome.utilities(scenario.population.as_slice()).iter().enumerate() {
//!         assert!(*u >= -1e-9, "user {j} lost money");
//!     }
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Comparing mechanisms
//!
//! The [`Mechanism`] trait runs RIT and both paper baselines — the §4 naive
//! `k`-th-price + contribution-tree combination ([`NaiveKthPriceTree`]) and
//! the §1 DARPA Network Challenge referral scheme ([`DarpaReferral`]) —
//! through one recruit→auction→payment pipeline, normalized into a common
//! [`MechanismOutcome`] view:
//!
//! ```
//! use rand::SeedableRng;
//! use rit::core::{Rit, RitConfig, RoundLimit};
//! use rit::model::Job;
//! use rit::sim::scenario::{Scenario, ScenarioConfig};
//! use rit::{DarpaReferral, Mechanism, MechanismKind, NaiveKthPriceTree};
//!
//! let scenario = Scenario::generate(&ScenarioConfig::paper(600), 9);
//! let job = Job::uniform(4, 40)?;
//! let rit = Rit::new(RitConfig {
//!     round_limit: RoundLimit::until_stall(),
//!     ..RitConfig::default()
//! })?;
//! for kind in MechanismKind::ALL {
//!     let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
//!     let outcome = match kind {
//!         MechanismKind::Rit => rit.evaluate(&job, &scenario.tree, &scenario.asks, &mut rng),
//!         MechanismKind::Naive => {
//!             NaiveKthPriceTree::new().evaluate(&job, &scenario.tree, &scenario.asks, &mut rng)
//!         }
//!         MechanismKind::Darpa => {
//!             DarpaReferral::new().evaluate(&job, &scenario.tree, &scenario.asks, &mut rng)
//!         }
//!     }?;
//!     println!("{kind}: total payment {:.2}", outcome.total_payment());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The baselines' internals live in [`core::naive`], [`core::darpa`], and the
//! underlying [`auction::kth_price`] auction (also re-exported here as
//! [`naive`], [`darpa`], and [`kth_price`]).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rit_auction as auction;
pub use rit_core as core;
pub use rit_model as model;
pub use rit_sim as sim;
pub use rit_socialgraph as socialgraph;
pub use rit_telemetry as telemetry;
pub use rit_tree as tree;

pub use rit_auction::kth_price;
pub use rit_core::{darpa, naive};
pub use rit_core::{DarpaReferral, Mechanism, MechanismKind, MechanismOutcome, NaiveKthPriceTree};
