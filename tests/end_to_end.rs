//! End-to-end integration tests: full RIT runs over social-graph-grown
//! incentive trees, exercising every crate together.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit::core::{Rit, RitConfig, RitError, RoundLimit};
use rit::model::{Job, TaskTypeId};
use rit::sim::scenario::{GraphModel, Scenario, ScenarioConfig};
use rit::tree::NodeId;

fn best_effort_rit() -> Rit {
    Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .expect("valid config")
}

#[test]
fn full_pipeline_allocates_and_pays_consistently() {
    let scenario = Scenario::generate(&ScenarioConfig::paper(3000), 1);
    let job = Job::uniform(10, 200).unwrap();
    let rit = best_effort_rit();
    let mut completed = 0;
    for seed in 0..5 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = rit
            .run(&job, &scenario.tree, &scenario.asks, &mut rng)
            .unwrap();
        if !out.completed() {
            assert_eq!(out.total_payment(), 0.0);
            continue;
        }
        completed += 1;
        // Exactly the job, per type.
        let mut per_type = vec![0u64; 10];
        for (j, &x) in out.allocation().iter().enumerate() {
            assert!(x <= scenario.asks[j].quantity(), "over-allocated user {j}");
            per_type[scenario.asks[j].task_type().index()] += x;
        }
        assert_eq!(per_type, vec![200; 10]);

        // Payments: p ≥ p^A ≥ x·a, and the §7 budget bound.
        for j in 0..scenario.num_users() {
            let floor = out.allocation()[j] as f64 * scenario.asks[j].unit_price();
            assert!(out.auction_payments()[j] >= floor - 1e-9);
            assert!(out.payment(j) >= out.auction_payments()[j] - 1e-9);
        }
        assert!(out.total_payment() <= 2.0 * out.total_auction_payment() + 1e-9);

        // Individual rationality with truthful asks.
        for (j, u) in out
            .utilities(scenario.population.as_slice())
            .iter()
            .enumerate()
        {
            assert!(*u >= -1e-9, "user {j} has negative utility {u}");
        }
    }
    assert!(
        completed >= 3,
        "most seeds should complete, got {completed}/5"
    );
}

#[test]
fn solicitation_rewards_flow_to_ancestors_only() {
    let scenario = Scenario::generate(&ScenarioConfig::paper(2000), 2);
    let job = Job::uniform(10, 120).unwrap();
    let rit = best_effort_rit();
    let mut rng = SmallRng::seed_from_u64(3);
    let out = rit
        .run(&job, &scenario.tree, &scenario.asks, &mut rng)
        .unwrap();
    if !out.completed() {
        return;
    }
    let rewards = out.solicitation_rewards();
    #[allow(clippy::needless_range_loop)]
    for j in 0..scenario.num_users() {
        if rewards[j] <= 1e-9 {
            continue;
        }
        // A solicitation reward requires a descendant of a different type
        // with a positive auction payment.
        let node = NodeId::from_user_index(j);
        let has_paying_descendant = scenario.tree.descendants(node).any(|d| {
            let i = d.user_index().unwrap();
            scenario.asks[i].task_type() != scenario.asks[j].task_type()
                && out.auction_payments()[i] > 0.0
        });
        assert!(
            has_paying_descendant,
            "user {j} rewarded without a contributor"
        );
    }
}

#[test]
fn works_across_graph_models() {
    let job = Job::uniform(5, 80).unwrap();
    let rit = best_effort_rit();
    for (i, graph) in [
        GraphModel::BarabasiAlbert { m: 3 },
        GraphModel::ErdosRenyi { p: 0.01 },
        GraphModel::WattsStrogatz { k: 6, beta: 0.3 },
    ]
    .into_iter()
    .enumerate()
    {
        let mut config = ScenarioConfig::paper(1200);
        config.workload.num_types = 5;
        config.graph = graph;
        let scenario = Scenario::generate(&config, 100 + i as u64);
        let mut rng = SmallRng::seed_from_u64(7);
        let out = rit
            .run(&job, &scenario.tree, &scenario.asks, &mut rng)
            .unwrap();
        // Regardless of completion, the run must be internally consistent.
        assert_eq!(out.allocation().len(), 1200);
        assert_eq!(out.payments().len(), 1200);
        assert_eq!(out.rounds_used().len(), 5);
    }
}

#[test]
fn paper_budget_vs_best_effort_agree_when_feasible() {
    // At mᵢ = 2000 with K_max ≤ 4 the paper budget is large; both modes
    // should complete and produce valid (not necessarily equal) outcomes.
    let mut config = ScenarioConfig::paper(6000);
    config.workload.num_types = 2;
    config.workload.capacity_max = 4;
    let scenario = Scenario::generate(&config, 5);
    let job = Job::uniform(2, 2000).unwrap();

    let strict = Rit::new(RitConfig::default()).unwrap();
    let loose = best_effort_rit();
    let mut rng1 = SmallRng::seed_from_u64(9);
    let mut rng2 = SmallRng::seed_from_u64(9);
    let a = strict
        .run(&job, &scenario.tree, &scenario.asks, &mut rng1)
        .unwrap();
    let b = loose
        .run(&job, &scenario.tree, &scenario.asks, &mut rng2)
        .unwrap();
    // Identical RNG + identical per-round behavior ⇒ same outcome as long as
    // the strict budget wasn't hit.
    if a.completed() && b.completed() {
        assert_eq!(a, b);
    }
}

#[test]
fn infeasible_guarantee_surfaces_not_panics() {
    let mut config = ScenarioConfig::paper(100);
    config.workload.num_types = 2;
    let scenario = Scenario::generate(&config, 6);
    let job = Job::uniform(2, 10).unwrap(); // tiny: 2·K_max ≥ mᵢ
    let strict = Rit::new(RitConfig::default()).unwrap();
    let mut rng = SmallRng::seed_from_u64(1);
    match strict.run(&job, &scenario.tree, &scenario.asks, &mut rng) {
        Err(RitError::GuaranteeInfeasible { .. }) => {}
        other => panic!("expected GuaranteeInfeasible, got {other:?}"),
    }
}

#[test]
fn zero_capacity_type_cannot_complete() {
    // Job demands a type nobody offers.
    let mut config = ScenarioConfig::paper(500);
    config.workload.num_types = 2;
    let scenario = Scenario::generate(&config, 8);
    let job = Job::from_counts(vec![50, 50, 10]).unwrap(); // type τ2 unstaffed
    let rit = best_effort_rit();
    let mut rng = SmallRng::seed_from_u64(4);
    let out = rit
        .run(&job, &scenario.tree, &scenario.asks, &mut rng)
        .unwrap();
    assert!(!out.completed());
    assert_eq!(out.unallocated()[2], 10);
    assert_eq!(out.total_payment(), 0.0);
    assert_eq!(out.total_allocated(), 0);
}

#[test]
fn utilities_respect_task_type_boundaries() {
    // Users only ever get tasks of their own type.
    let scenario = Scenario::generate(&ScenarioConfig::paper(1000), 10);
    let job = Job::uniform(10, 50).unwrap();
    let rit = best_effort_rit();
    let mut rng = SmallRng::seed_from_u64(11);
    let out = rit
        .run(&job, &scenario.tree, &scenario.asks, &mut rng)
        .unwrap();
    let mut demand_by_type = [0u64; 10];
    for (j, &x) in out.allocation().iter().enumerate() {
        demand_by_type[scenario.population[j].task_type().index()] += x;
    }
    for (t, &d) in demand_by_type.iter().enumerate() {
        assert!(
            d <= job.tasks_of(TaskTypeId::new(t as u32)),
            "type {t} over-allocated"
        );
    }
}
