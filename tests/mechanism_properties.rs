//! Statistical verification of the paper's theorems on the full mechanism.
//!
//! The proofs give probabilistic guarantees; these tests probe them
//! empirically with seeded Monte Carlo at sizes where the guarantees apply,
//! using tolerances wide enough to be deterministic in CI yet tight enough
//! to catch sign errors in payments or weights.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit::core::sybil_exec;
use rit::core::{Rit, RitConfig, RoundLimit};
use rit::model::{Job, UserProfile};
use rit::sim::metrics::MeanStd;
use rit::sim::scenario::{Scenario, ScenarioConfig};
use rit::tree::sybil::SybilPlan;
use rit::tree::NodeId;

struct World {
    scenario: Scenario,
    job: Job,
    rit: Rit,
}

fn world(n: usize, num_types: usize, m_i: u64, seed: u64) -> World {
    let mut config = ScenarioConfig::paper(n);
    config.workload.num_types = num_types;
    config.workload.capacity_max = 8;
    let scenario = Scenario::generate(&config, seed);
    let job = Job::uniform(num_types, m_i).unwrap();
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .unwrap();
    World { scenario, job, rit }
}

fn mean_utility(w: &World, user: usize, asks: &[rit::model::Ask], runs: u64, base: u64) -> MeanStd {
    let cost = w.scenario.population[user].unit_cost();
    let mut acc = MeanStd::new();
    for s in 0..runs {
        let mut rng = SmallRng::seed_from_u64(base + s);
        let out = w.rit.run(&w.job, &w.scenario.tree, asks, &mut rng).unwrap();
        acc.push(out.utility(user, cost));
    }
    acc
}

/// Theorem (truthfulness, Lemma 6.3): misreporting the ask value does not
/// raise expected utility. Probed for over- and under-bidding at ±20%.
#[test]
fn price_deviations_do_not_beat_truthful_on_average() {
    let w = world(1500, 3, 250, 42);
    // A user that wins regularly when truthful.
    let mut probe_rng = SmallRng::seed_from_u64(999);
    let probe = w
        .rit
        .run(&w.job, &w.scenario.tree, &w.scenario.asks, &mut probe_rng)
        .unwrap();
    let user = (0..w.scenario.num_users())
        .find(|&j| probe.auction_payments()[j] > 0.0 && w.scenario.population[j].capacity() >= 4)
        .expect("a regular winner exists");

    let runs = 120;
    let truthful = mean_utility(&w, user, &w.scenario.asks, runs, 0);
    for factor in [0.8, 1.2] {
        let mut asks = w.scenario.asks.clone();
        asks[user] = asks[user]
            .with_unit_price(asks[user].unit_price() * factor)
            .unwrap();
        let deviant = mean_utility(&w, user, &asks, runs, 50_000);
        let se = (truthful.std_dev().powi(2) / runs as f64
            + deviant.std_dev().powi(2) / runs as f64)
            .sqrt();
        assert!(
            deviant.mean() <= truthful.mean() + 3.0 * se.max(0.05),
            "deviation ×{factor} beats truthful: {:.4} > {:.4} (se {se:.4})",
            deviant.mean(),
            truthful.mean()
        );
    }
}

/// Theorem 2 (sybil-proofness): splitting with equal asks does not raise
/// expected total utility, across all three arrangement shapes.
#[test]
fn sybil_arrangements_do_not_beat_honest_on_average() {
    let w = world(1200, 3, 200, 7);
    let attacker = (0..w.scenario.num_users())
        .find(|&j| {
            w.scenario.population[j].capacity() >= 6
                && !w
                    .scenario
                    .tree
                    .children(NodeId::from_user_index(j))
                    .is_empty()
        })
        .expect("capable recruiter exists");
    let cost = w.scenario.population[attacker].unit_cost();
    let runs = 80;
    let honest = mean_utility(&w, attacker, &w.scenario.asks, runs, 0);

    for (name, plan) in [
        ("chain", SybilPlan::chain(3)),
        ("star", SybilPlan::star(3)),
        ("random", SybilPlan::random(3)),
    ] {
        let mut acc = MeanStd::new();
        for s in 0..runs {
            let mut rng = SmallRng::seed_from_u64(70_000 + s);
            let identity_asks = sybil_exec::uniform_identity_asks(
                w.scenario.asks[attacker].task_type(),
                w.scenario.asks[attacker].quantity(),
                3,
                w.scenario.asks[attacker].unit_price(),
                &mut rng,
            );
            let sc = sybil_exec::apply_attack(
                &w.scenario.tree,
                &w.scenario.asks,
                attacker,
                &identity_asks,
                &plan,
                &mut rng,
            )
            .unwrap();
            let out = w.rit.run(&w.job, &sc.tree, &sc.asks, &mut rng).unwrap();
            acc.push(sc.attacker_utility(&out, cost));
        }
        let se =
            (honest.std_dev().powi(2) / runs as f64 + acc.std_dev().powi(2) / runs as f64).sqrt();
        assert!(
            acc.mean() <= honest.mean() + 3.0 * se.max(0.05),
            "{name} attack beats honest: {:.4} > {:.4} (se {se:.4})",
            acc.mean(),
            honest.mean()
        );
    }
}

/// Theorem 4 (solicitation incentive): a user's utility with a recruited
/// different-type child is at least its utility had the same newcomer joined
/// elsewhere.
#[test]
fn recruiting_pays_weakly_more_than_not() {
    let w = world(1000, 4, 150, 21);
    // Host: a depth-1 user; the newcomer has a different task type.
    let host = (0..w.scenario.num_users())
        .find(|&j| w.scenario.tree.depth(NodeId::from_user_index(j)) == 1)
        .expect("depth-1 user exists");
    let host_type = w.scenario.population[host].task_type();
    let new_type = rit::model::TaskTypeId::new((host_type.raw() + 1) % 4);
    let newcomer = UserProfile::new(new_type, 5, 1.0).unwrap();

    let extend = |parent: NodeId| {
        let mut parents = w.scenario.tree.to_parents();
        parents.push(parent);
        let tree = rit::tree::IncentiveTree::from_parents(&parents).unwrap();
        let mut asks = w.scenario.asks.clone();
        asks.push(newcomer.truthful_ask());
        (tree, asks)
    };
    let (tree_mine, asks_mine) = extend(NodeId::from_user_index(host));
    let (tree_other, asks_other) = extend(NodeId::ROOT);

    let runs = 80;
    let cost = w.scenario.population[host].unit_cost();
    let mut mine = MeanStd::new();
    let mut other = MeanStd::new();
    for s in 0..runs {
        let mut rng = SmallRng::seed_from_u64(s);
        let out = w.rit.run(&w.job, &tree_mine, &asks_mine, &mut rng).unwrap();
        mine.push(out.utility(host, cost));
        let mut rng = SmallRng::seed_from_u64(s);
        let out = w
            .rit
            .run(&w.job, &tree_other, &asks_other, &mut rng)
            .unwrap();
        other.push(out.utility(host, cost));
    }
    // Same seeds, same ask multiset ⇒ paired comparison.
    assert!(
        mine.mean() >= other.mean() - 1e-9,
        "hosting the recruit pays less: {:.4} < {:.4}",
        mine.mean(),
        other.mean()
    );
}

/// Lemma 6.1 / Theorem 1 at scale: across many completed runs, no truthful
/// user is ever paid below its incurred cost.
#[test]
fn no_truthful_user_ever_underwater() {
    let w = world(2000, 5, 150, 33);
    for seed in 0..6 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = w
            .rit
            .run(&w.job, &w.scenario.tree, &w.scenario.asks, &mut rng)
            .unwrap();
        let utils = out.utilities(w.scenario.population.as_slice());
        let min = utils.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(min >= -1e-9, "seed {seed}: minimum utility {min}");
    }
}
