//! Integration tests of the referral-rule framework and the deviation
//! probes against full social-graph scenarios.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit::core::probes::ProbeScenario;
use rit::core::referral::{
    split_resistance, GeometricDepth, GeometricDistance, ReferralReward, SubtreeLogBonus,
};
use rit::core::{Rit, RitConfig, RoundLimit};
use rit::model::Job;
use rit::sim::scenario::{Scenario, ScenarioConfig};
use rit::tree::NodeId;

fn world() -> (Scenario, Job, Rit) {
    let mut config = ScenarioConfig::paper(1000);
    config.workload.num_types = 4;
    let scenario = Scenario::generate(&config, 31);
    let job = Job::uniform(4, 120).unwrap();
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .unwrap();
    (scenario, job, rit)
}

#[test]
fn rit_payment_rule_split_resistant_on_real_auction_payments() {
    let (scenario, job, rit) = world();
    let mut rng = SmallRng::seed_from_u64(1);
    let phase = rit
        .run_auction_phase(&job, &scenario.asks, &mut rng)
        .unwrap();
    let contributions = &phase.auction_payments;

    let mut screened = 0;
    for j in 0..scenario.num_users() {
        if contributions[j] <= 0.0 {
            continue;
        }
        let screen = split_resistance(
            &GeometricDepth,
            &scenario.tree,
            &scenario.asks,
            contributions,
            j,
            4,
        );
        assert!(
            screen.resistant(),
            "user {j}: split pays {} > honest {}",
            screen.best_attack,
            screen.honest
        );
        screened += 1;
        if screened >= 50 {
            break; // plenty of coverage, keep the test fast
        }
    }
    assert!(screened >= 20, "too few contributors screened: {screened}");
}

#[test]
fn distance_rule_is_vulnerable_where_depth_rule_is_not() {
    let (scenario, job, rit) = world();
    let mut rng = SmallRng::seed_from_u64(2);
    let phase = rit
        .run_auction_phase(&job, &scenario.asks, &mut rng)
        .unwrap();
    let contributions = &phase.auction_payments;

    // Find a contributing recruiter; under distance decay it must gain by
    // splitting, under RIT's rule it must not.
    let victim = (0..scenario.num_users())
        .find(|&j| {
            contributions[j] > 1.0
                && !scenario
                    .tree
                    .children(NodeId::from_user_index(j))
                    .is_empty()
        })
        .expect("contributing recruiter exists");
    let darpa = split_resistance(
        &GeometricDistance::default(),
        &scenario.tree,
        &scenario.asks,
        contributions,
        victim,
        4,
    );
    assert!(!darpa.resistant(), "distance rule unexpectedly resistant");
    let rit_rule = split_resistance(
        &GeometricDepth,
        &scenario.tree,
        &scenario.asks,
        contributions,
        victim,
        4,
    );
    assert!(rit_rule.resistant());
}

#[test]
fn all_rules_pay_at_least_the_contribution() {
    let (scenario, job, rit) = world();
    let mut rng = SmallRng::seed_from_u64(3);
    let phase = rit
        .run_auction_phase(&job, &scenario.asks, &mut rng)
        .unwrap();
    let c = &phase.auction_payments;
    let rules: Vec<Box<dyn ReferralReward>> = vec![
        Box::new(GeometricDepth),
        Box::new(GeometricDistance::default()),
        Box::new(SubtreeLogBonus),
    ];
    for rule in &rules {
        let p = rule.payments(&scenario.tree, &scenario.asks, c);
        for j in 0..c.len() {
            assert!(
                p[j] >= c[j] - 1e-9,
                "{}: user {j} paid {} below contribution {}",
                rule.name(),
                p[j],
                c[j]
            );
        }
    }
}

#[test]
fn probe_api_confirms_theorems_on_a_real_scenario() {
    let (scenario, job, rit) = world();
    // Pick a user that wins regularly.
    let mut probe_rng = SmallRng::seed_from_u64(4);
    let phase = rit
        .run_auction_phase(&job, &scenario.asks, &mut probe_rng)
        .unwrap();
    let user = (0..scenario.num_users())
        .find(|&j| phase.auction_payments[j] > 0.0 && scenario.asks[j].quantity() >= 3)
        .unwrap();
    let probe = ProbeScenario {
        rit: &rit,
        job: &job,
        tree: &scenario.tree,
        asks: &scenario.asks,
        user,
        unit_cost: scenario.population[user].unit_cost(),
    };
    let runs = 50;
    // Price misreports, both directions.
    for factor in [0.7, 1.4] {
        let report = probe.price_deviation(factor, runs, 99).unwrap();
        assert!(
            report.deviation_not_profitable(3.0),
            "price ×{factor}: {report:?}"
        );
    }
    // Under-claiming capacity.
    let report = probe.quantity_deviation(1, runs, 101).unwrap();
    assert!(report.deviation_not_profitable(3.0), "quantity: {report:?}");
    // Sybil splitting at the truthful price.
    let report = probe
        .sybil_deviation(
            &rit::tree::sybil::SybilPlan::star(2),
            scenario.asks[user].unit_price(),
            runs,
            103,
        )
        .unwrap();
    assert!(report.deviation_not_profitable(3.0), "sybil: {report:?}");
}
